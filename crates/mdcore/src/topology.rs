//! Molecular topology: atoms, covalent bonded terms, and non-bonded
//! exclusions.
//!
//! Forces due to covalent bonds are represented, exactly as in the paper, via
//! a sum of 2-body (bond), 3-body (angle), and 4-body (dihedral and improper)
//! terms that follow the connectivity of the molecule. Atoms connected by
//! one or two bonds are *excluded* from the non-bonded sum, and 1-4 pairs
//! (three bonds apart) have their non-bonded interaction scaled down —
//! the standard CHARMM-style exclusion policy NAMD implements.

use crate::vec3::Vec3;
use std::collections::BTreeSet;

/// Index of an atom within a [`Topology`] / system.
pub type AtomId = u32;

/// Static per-atom properties. Positions/velocities live in the dynamic
/// state ([`crate::system::System`]), not here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Atom {
    /// Mass in amu.
    pub mass: f64,
    /// Partial charge in elementary charge units.
    pub charge: f64,
    /// Index into the force field's Lennard-Jones type table.
    pub lj_type: u16,
}

/// Harmonic 2-body bond: `E = k (r - r0)^2` (CHARMM convention, no 1/2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bond {
    pub a: AtomId,
    pub b: AtomId,
    /// Force constant, kcal/mol/Å².
    pub k: f64,
    /// Equilibrium length, Å.
    pub r0: f64,
}

/// Harmonic 3-body angle: `E = k (θ - θ0)^2`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Angle {
    pub a: AtomId,
    /// Central atom.
    pub b: AtomId,
    pub c: AtomId,
    /// Force constant, kcal/mol/rad².
    pub k: f64,
    /// Equilibrium angle, radians.
    pub theta0: f64,
}

/// Periodic 4-body dihedral: `E = k (1 + cos(n φ - δ))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dihedral {
    pub a: AtomId,
    pub b: AtomId,
    pub c: AtomId,
    pub d: AtomId,
    /// Barrier height, kcal/mol.
    pub k: f64,
    /// Multiplicity (number of minima per full rotation).
    pub n: u8,
    /// Phase δ, radians.
    pub delta: f64,
}

/// Harmonic 4-body improper: `E = k (ψ - ψ0)^2`, keeps planar centers planar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Improper {
    pub a: AtomId,
    pub b: AtomId,
    pub c: AtomId,
    pub d: AtomId,
    /// Force constant, kcal/mol/rad².
    pub k: f64,
    /// Equilibrium improper angle, radians.
    pub psi0: f64,
}

/// Harmonic positional restraint: `E = k·|r − r₀|²` — the "constraint"
/// compute-object variety the paper lists alongside bond and electrostatic
/// computes. Used to pin heavy atoms during equilibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Restraint {
    pub atom: AtomId,
    /// Force constant, kcal/mol/Å².
    pub k: f64,
    /// Anchor position, Å.
    pub target: Vec3,
}

/// How a given atom pair participates in the non-bonded sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExclusionKind {
    /// Normal pair: full non-bonded interaction.
    None,
    /// Fully excluded (1-2 or 1-3 neighbours).
    Full,
    /// 1-4 pair: interaction retained but scaled.
    Scaled14,
}

/// Complete covalent topology of a system.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    pub atoms: Vec<Atom>,
    pub bonds: Vec<Bond>,
    pub angles: Vec<Angle>,
    pub dihedrals: Vec<Dihedral>,
    pub impropers: Vec<Improper>,
    pub restraints: Vec<Restraint>,
}

impl Topology {
    /// Number of atoms.
    pub fn n_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Append another topology, offsetting all atom indices. Returns the
    /// atom-index offset at which `other`'s atoms begin.
    pub fn merge(&mut self, other: &Topology) -> AtomId {
        let off = self.atoms.len() as AtomId;
        self.atoms.extend_from_slice(&other.atoms);
        self.bonds.extend(other.bonds.iter().map(|b| Bond { a: b.a + off, b: b.b + off, ..*b }));
        self.angles.extend(
            other.angles.iter().map(|t| Angle { a: t.a + off, b: t.b + off, c: t.c + off, ..*t }),
        );
        self.dihedrals.extend(other.dihedrals.iter().map(|d| Dihedral {
            a: d.a + off,
            b: d.b + off,
            c: d.c + off,
            d: d.d + off,
            ..*d
        }));
        self.impropers.extend(other.impropers.iter().map(|d| Improper {
            a: d.a + off,
            b: d.b + off,
            c: d.c + off,
            d: d.d + off,
            ..*d
        }));
        self.restraints
            .extend(other.restraints.iter().map(|r| Restraint { atom: r.atom + off, ..*r }));
        off
    }

    /// Validate that every bonded term references existing atoms and that no
    /// term repeats an atom. Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.atoms.len() as AtomId;
        let chk = |id: AtomId, what: &str, i: usize| {
            if id >= n {
                Err(format!("{what} #{i} references atom {id} but only {n} atoms exist"))
            } else {
                Ok(())
            }
        };
        for (i, b) in self.bonds.iter().enumerate() {
            chk(b.a, "bond", i)?;
            chk(b.b, "bond", i)?;
            if b.a == b.b {
                return Err(format!("bond #{i} connects atom {} to itself", b.a));
            }
        }
        for (i, t) in self.angles.iter().enumerate() {
            chk(t.a, "angle", i)?;
            chk(t.b, "angle", i)?;
            chk(t.c, "angle", i)?;
            if t.a == t.b || t.b == t.c || t.a == t.c {
                return Err(format!("angle #{i} repeats an atom"));
            }
        }
        for (i, d) in self.dihedrals.iter().enumerate() {
            for id in [d.a, d.b, d.c, d.d] {
                chk(id, "dihedral", i)?;
            }
            let set: BTreeSet<_> = [d.a, d.b, d.c, d.d].into_iter().collect();
            if set.len() != 4 {
                return Err(format!("dihedral #{i} repeats an atom"));
            }
        }
        for (i, d) in self.impropers.iter().enumerate() {
            for id in [d.a, d.b, d.c, d.d] {
                chk(id, "improper", i)?;
            }
            let set: BTreeSet<_> = [d.a, d.b, d.c, d.d].into_iter().collect();
            if set.len() != 4 {
                return Err(format!("improper #{i} repeats an atom"));
            }
        }
        for (i, r) in self.restraints.iter().enumerate() {
            chk(r.atom, "restraint", i)?;
            if !(r.k.is_finite() && r.k >= 0.0) {
                return Err(format!("restraint #{i} has invalid k {}", r.k));
            }
        }
        Ok(())
    }
}

/// Per-atom sorted exclusion lists, answering "how does pair (i, j) enter the
/// non-bonded sum?" in O(log k).
///
/// The paper notes that excluded pairs *must* be detected during the normal
/// pairwise force computation (the excluded terms would be orders of
/// magnitude larger than real forces) and that an "efficient method of
/// conducting such checks" replaced an earlier radius-limited scheme. This
/// structure is that method: exclusions are stored per-atom, sorted, and
/// probed with binary search inside the kernel loop.
#[derive(Debug, Clone, Default)]
pub struct Exclusions {
    /// For each atom, sorted list of fully-excluded partners.
    full: Vec<Vec<AtomId>>,
    /// For each atom, sorted list of scaled 1-4 partners.
    scaled14: Vec<Vec<AtomId>>,
}

impl Exclusions {
    /// Build exclusions from bond connectivity: direct bonds (1-2) and
    /// two-bond neighbours (1-3) are fully excluded; three-bond neighbours
    /// (1-4) are scaled. If a pair qualifies as both (rings), full exclusion
    /// wins.
    pub fn from_topology(topo: &Topology) -> Self {
        let n = topo.n_atoms();
        let mut adj: Vec<Vec<AtomId>> = vec![Vec::new(); n];
        for b in &topo.bonds {
            adj[b.a as usize].push(b.b);
            adj[b.b as usize].push(b.a);
        }
        for l in &mut adj {
            l.sort_unstable();
            l.dedup();
        }

        let mut full: Vec<BTreeSet<AtomId>> = vec![BTreeSet::new(); n];
        let mut scaled: Vec<BTreeSet<AtomId>> = vec![BTreeSet::new(); n];

        for i in 0..n as AtomId {
            // 1-2
            for &j in &adj[i as usize] {
                if j != i {
                    full[i as usize].insert(j);
                }
            }
            // 1-3 and 1-4 via breadth over two / three bonds.
            for &j in &adj[i as usize] {
                for &k in &adj[j as usize] {
                    if k != i {
                        full[i as usize].insert(k);
                    }
                    for &l in &adj[k as usize] {
                        if l != i && l != j && !full[i as usize].contains(&l) {
                            scaled[i as usize].insert(l);
                        }
                    }
                }
            }
        }
        // A pair reachable by both a 3-bond path and a shorter path must stay
        // fully excluded; purge such entries from the scaled sets.
        for i in 0..n {
            let f = &full[i];
            scaled[i].retain(|j| !f.contains(j));
            scaled[i].remove(&(i as AtomId));
        }

        Exclusions {
            full: full.into_iter().map(|s| s.into_iter().collect()).collect(),
            scaled14: scaled.into_iter().map(|s| s.into_iter().collect()).collect(),
        }
    }

    /// An empty exclusion table for `n` atoms (no bonds).
    pub fn none(n: usize) -> Self {
        Exclusions { full: vec![Vec::new(); n], scaled14: vec![Vec::new(); n] }
    }

    /// Classify the pair `(i, j)`.
    #[inline]
    pub fn kind(&self, i: AtomId, j: AtomId) -> ExclusionKind {
        let fi = &self.full[i as usize];
        if fi.binary_search(&j).is_ok() {
            return ExclusionKind::Full;
        }
        if self.scaled14[i as usize].binary_search(&j).is_ok() {
            return ExclusionKind::Scaled14;
        }
        ExclusionKind::None
    }

    /// Number of atoms covered.
    pub fn n_atoms(&self) -> usize {
        self.full.len()
    }

    /// Total number of (ordered) full exclusions — used in tests/statistics.
    pub fn n_full(&self) -> usize {
        self.full.iter().map(Vec::len).sum()
    }

    /// Total number of (ordered) scaled 1-4 pairs.
    pub fn n_scaled14(&self) -> usize {
        self.scaled14.iter().map(Vec::len).sum()
    }

    /// Iterate over the fully-excluded partners of atom `i`.
    pub fn full_of(&self, i: AtomId) -> &[AtomId] {
        &self.full[i as usize]
    }

    /// Iterate over the scaled 1-4 partners of atom `i`.
    pub fn scaled14_of(&self, i: AtomId) -> &[AtomId] {
        &self.scaled14[i as usize]
    }
}

/// Convenience: a water molecule (3 atoms: O, H, H) appended to `topo`.
/// Returns the oxygen's atom id. Uses TIP3P-like parameters.
pub fn push_water(topo: &mut Topology, o_lj: u16, h_lj: u16) -> AtomId {
    let o = topo.atoms.len() as AtomId;
    topo.atoms.push(Atom { mass: 15.9994, charge: -0.834, lj_type: o_lj });
    topo.atoms.push(Atom { mass: 1.008, charge: 0.417, lj_type: h_lj });
    topo.atoms.push(Atom { mass: 1.008, charge: 0.417, lj_type: h_lj });
    topo.bonds.push(Bond { a: o, b: o + 1, k: 450.0, r0: 0.9572 });
    topo.bonds.push(Bond { a: o, b: o + 2, k: 450.0, r0: 0.9572 });
    topo.angles.push(Angle {
        a: o + 1,
        b: o,
        c: o + 2,
        k: 55.0,
        theta0: 104.52_f64.to_radians(),
    });
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom() -> Atom {
        Atom { mass: 12.0, charge: 0.0, lj_type: 0 }
    }

    /// Linear chain 0-1-2-3-4.
    fn chain(n: usize) -> Topology {
        let mut t = Topology::default();
        t.atoms = vec![atom(); n];
        for i in 0..n - 1 {
            t.bonds.push(Bond { a: i as AtomId, b: (i + 1) as AtomId, k: 300.0, r0: 1.5 });
        }
        t
    }

    #[test]
    fn chain_exclusions() {
        let t = chain(6);
        let ex = Exclusions::from_topology(&t);
        // 0-1 bonded, 0-2 two bonds, both fully excluded.
        assert_eq!(ex.kind(0, 1), ExclusionKind::Full);
        assert_eq!(ex.kind(0, 2), ExclusionKind::Full);
        // 0-3 is 1-4: scaled.
        assert_eq!(ex.kind(0, 3), ExclusionKind::Scaled14);
        // 0-4 is beyond: normal.
        assert_eq!(ex.kind(0, 4), ExclusionKind::None);
        assert_eq!(ex.kind(0, 5), ExclusionKind::None);
    }

    #[test]
    fn exclusions_are_symmetric() {
        let t = chain(8);
        let ex = Exclusions::from_topology(&t);
        for i in 0..8u32 {
            for j in 0..8u32 {
                if i != j {
                    assert_eq!(ex.kind(i, j), ex.kind(j, i), "asymmetry at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn ring_prefers_full_exclusion() {
        // Triangle 0-1-2-0: every pair is 1-2, and also reachable by a
        // 3-bond path (0-1-2-0 ... ), must remain fully excluded.
        let mut t = Topology::default();
        t.atoms = vec![atom(); 3];
        t.bonds.push(Bond { a: 0, b: 1, k: 1.0, r0: 1.0 });
        t.bonds.push(Bond { a: 1, b: 2, k: 1.0, r0: 1.0 });
        t.bonds.push(Bond { a: 2, b: 0, k: 1.0, r0: 1.0 });
        let ex = Exclusions::from_topology(&t);
        assert_eq!(ex.kind(0, 1), ExclusionKind::Full);
        assert_eq!(ex.kind(1, 2), ExclusionKind::Full);
        assert_eq!(ex.kind(0, 2), ExclusionKind::Full);
        assert_eq!(ex.n_scaled14(), 0);
    }

    #[test]
    fn four_ring_has_no_scaled_pairs() {
        // Square 0-1-2-3-0: the 1-4 path 0-1-2-3 ends at atom 3, which is
        // also a direct bond partner of 0; full exclusion must win.
        let mut t = Topology::default();
        t.atoms = vec![atom(); 4];
        for (a, b) in [(0u32, 1u32), (1, 2), (2, 3), (3, 0)] {
            t.bonds.push(Bond { a, b, k: 1.0, r0: 1.0 });
        }
        let ex = Exclusions::from_topology(&t);
        assert_eq!(ex.kind(0, 3), ExclusionKind::Full);
        assert_eq!(ex.kind(0, 2), ExclusionKind::Full); // 1-3 via either path
        assert_eq!(ex.n_scaled14(), 0);
    }

    #[test]
    fn water_exclusions() {
        let mut t = Topology::default();
        let o = push_water(&mut t, 0, 1);
        let ex = Exclusions::from_topology(&t);
        assert_eq!(ex.kind(o, o + 1), ExclusionKind::Full);
        assert_eq!(ex.kind(o, o + 2), ExclusionKind::Full);
        assert_eq!(ex.kind(o + 1, o + 2), ExclusionKind::Full); // 1-3 via O
    }

    #[test]
    fn merge_offsets_indices() {
        let mut a = chain(3);
        let b = chain(4);
        let off = a.merge(&b);
        assert_eq!(off, 3);
        assert_eq!(a.n_atoms(), 7);
        assert_eq!(a.bonds.len(), 2 + 3);
        assert_eq!(a.bonds[2].a, 3);
        assert_eq!(a.bonds[2].b, 4);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn validate_catches_bad_indices() {
        let mut t = chain(3);
        t.bonds.push(Bond { a: 0, b: 99, k: 1.0, r0: 1.0 });
        assert!(t.validate().is_err());

        let mut t2 = chain(3);
        t2.bonds.push(Bond { a: 1, b: 1, k: 1.0, r0: 1.0 });
        assert!(t2.validate().unwrap_err().contains("itself"));
    }

    #[test]
    fn validate_catches_repeated_dihedral_atom() {
        let mut t = chain(4);
        t.dihedrals.push(Dihedral { a: 0, b: 1, c: 2, d: 0, k: 1.0, n: 2, delta: 0.0 });
        assert!(t.validate().is_err());
    }

    #[test]
    fn empty_exclusions() {
        let ex = Exclusions::none(5);
        assert_eq!(ex.kind(0, 4), ExclusionKind::None);
        assert_eq!(ex.n_full(), 0);
    }

    #[test]
    fn exclusion_counts_for_chain() {
        // Chain of 5: full (ordered) pairs = 2*(4 bonds) + 2*(3 one-three) = 14;
        // scaled = 2*(2 one-four) = 4.
        let ex = Exclusions::from_topology(&chain(5));
        assert_eq!(ex.n_full(), 14);
        assert_eq!(ex.n_scaled14(), 4);
    }
}
