//! Trajectory output and structural analysis.
//!
//! * [`XyzWriter`] — the universal plain-text XYZ trajectory format, one
//!   frame per MD snapshot (readable by VMD, the visualizer built alongside
//!   NAMD in the same group).
//! * [`radial_distribution`] — g(r) between two atom selections; the
//!   standard check that a simulated liquid actually has liquid structure.
//! * [`mean_squared_displacement`] — MSD over stored frames (diffusive
//!   behaviour, with unwrapped coordinates).

use crate::pbc::Cell;
use crate::system::System;
use crate::vec3::Vec3;
use std::io::Write;

/// Writes XYZ-format trajectory frames to any `Write` sink.
pub struct XyzWriter<W: Write> {
    sink: W,
    /// Element label per atom (defaults to "X" when not provided).
    labels: Vec<String>,
    frames_written: usize,
}

impl<W: Write> XyzWriter<W> {
    /// Create a writer with per-atom element labels.
    pub fn new(sink: W, labels: Vec<String>) -> Self {
        XyzWriter { sink, labels, frames_written: 0 }
    }

    /// Create a writer that derives labels from atom masses (O/H/C/N-ish).
    pub fn from_system(sink: W, system: &System) -> Self {
        let labels = system
            .topology
            .atoms
            .iter()
            .map(|a| {
                match a.mass {
                    m if (m - 1.008).abs() < 0.1 => "H",
                    m if (m - 15.9994).abs() < 0.1 => "O",
                    m if (m - 22.99).abs() < 0.1 => "Na",
                    m if (12.0..=14.5).contains(&m) => "C",
                    _ => "X",
                }
                .to_string()
            })
            .collect();
        XyzWriter::new(sink, labels)
    }

    /// Write one frame. `comment` lands on the XYZ comment line.
    pub fn write_frame(
        &mut self,
        positions: &[Vec3],
        comment: &str,
    ) -> std::io::Result<()> {
        assert_eq!(positions.len(), self.labels.len(), "frame size mismatch");
        writeln!(self.sink, "{}", positions.len())?;
        writeln!(self.sink, "{comment}")?;
        for (p, l) in positions.iter().zip(&self.labels) {
            writeln!(self.sink, "{l} {:.6} {:.6} {:.6}", p.x, p.y, p.z)?;
        }
        self.frames_written += 1;
        Ok(())
    }

    /// Frames written so far.
    pub fn frames_written(&self) -> usize {
        self.frames_written
    }

    /// Finish and return the sink.
    pub fn into_inner(self) -> W {
        self.sink
    }
}

/// Radial distribution function g(r) between selections `a` and `b` (atom
/// index lists), averaged over `frames`. Returns `(r_centers, g)` with
/// `n_bins` bins up to `r_max`.
pub fn radial_distribution(
    cell: &Cell,
    frames: &[Vec<Vec3>],
    a: &[u32],
    b: &[u32],
    r_max: f64,
    n_bins: usize,
) -> (Vec<f64>, Vec<f64>) {
    assert!(r_max > 0.0 && n_bins > 0 && !frames.is_empty());
    assert!(!a.is_empty() && !b.is_empty());
    let dr = r_max / n_bins as f64;
    let mut hist = vec![0.0f64; n_bins];
    let same = a == b;
    for frame in frames {
        for (ka, &i) in a.iter().enumerate() {
            for (kb, &j) in b.iter().enumerate() {
                if same && kb <= ka {
                    continue;
                }
                if i == j {
                    continue;
                }
                let r = cell.dist2(frame[i as usize], frame[j as usize]).sqrt();
                if r < r_max {
                    let bin = (r / dr) as usize;
                    // Each unordered pair counts for both directions.
                    hist[bin.min(n_bins - 1)] += if same { 2.0 } else { 1.0 };
                }
            }
        }
    }
    // Normalize by ideal-gas shell counts: ρ_b × shell volume × N_a.
    let volume = cell.volume();
    let rho_pairs = a.len() as f64 * b.len() as f64 / volume;
    let mut centers = Vec::with_capacity(n_bins);
    let mut g = Vec::with_capacity(n_bins);
    for k in 0..n_bins {
        let r0 = k as f64 * dr;
        let r1 = r0 + dr;
        let shell = 4.0 / 3.0 * std::f64::consts::PI * (r1.powi(3) - r0.powi(3));
        let ideal = rho_pairs * shell * frames.len() as f64;
        centers.push(r0 + 0.5 * dr);
        g.push(if ideal > 0.0 { hist[k] / ideal } else { 0.0 });
    }
    (centers, g)
}

/// Mean squared displacement per stored frame relative to frame 0, using
/// *unwrapped* displacement accumulation (consecutive-frame minimum images
/// summed, so box wrapping does not truncate diffusion paths).
pub fn mean_squared_displacement(cell: &Cell, frames: &[Vec<Vec3>]) -> Vec<f64> {
    if frames.is_empty() {
        return Vec::new();
    }
    let n = frames[0].len();
    let mut unwrapped: Vec<Vec3> = frames[0].clone();
    let mut reference = frames[0].clone();
    let mut out = vec![0.0];
    let origin = frames[0].clone();
    for w in frames.windows(2) {
        let (prev, next) = (&w[0], &w[1]);
        let mut acc = 0.0;
        for i in 0..n {
            let step = cell.min_image(next[i], prev[i]);
            unwrapped[i] += step;
            let d = unwrapped[i] - origin[i];
            acc += d.norm2();
        }
        reference.clone_from(next);
        out.push(acc / n as f64);
    }
    out
}

/// Normalized velocity autocorrelation function `C(τ) = ⟨v(0)·v(τ)⟩ /
/// ⟨v(0)·v(0)⟩`, averaged over atoms and time origins, for lags
/// `0..max_lag` (in frames).
pub fn velocity_autocorrelation(vel_frames: &[Vec<Vec3>], max_lag: usize) -> Vec<f64> {
    assert!(!vel_frames.is_empty());
    let n_frames = vel_frames.len();
    let max_lag = max_lag.min(n_frames - 1);
    let n = vel_frames[0].len();
    let mut out = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag {
        let mut acc = 0.0;
        let mut count = 0usize;
        for t0 in 0..n_frames - lag {
            for i in 0..n {
                acc += vel_frames[t0][i].dot(vel_frames[t0 + lag][i]);
            }
            count += n;
        }
        out.push(acc / count as f64);
    }
    let c0 = out[0].max(1e-300);
    for c in &mut out {
        *c /= c0;
    }
    out
}

/// Self-diffusion coefficient from the MSD slope (Einstein relation,
/// `D = MSD/(6t)`), fit over the last half of the window. `frame_dt` is the
/// time between stored frames (fs); the result is in Å²/fs.
pub fn diffusion_coefficient(msd: &[f64], frame_dt: f64) -> f64 {
    assert!(msd.len() >= 4 && frame_dt > 0.0);
    // Least-squares slope of MSD vs t over the second half.
    let lo = msd.len() / 2;
    let pts: Vec<(f64, f64)> = (lo..msd.len())
        .map(|k| (k as f64 * frame_dt, msd[k]))
        .collect();
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx).max(1e-300);
    slope / 6.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xyz_format_is_correct() {
        let pos = vec![Vec3::new(1.0, 2.0, 3.0), Vec3::new(-1.5, 0.0, 2.25)];
        let mut w = XyzWriter::new(Vec::new(), vec!["O".into(), "H".into()]);
        w.write_frame(&pos, "frame 0").unwrap();
        w.write_frame(&pos, "frame 1").unwrap();
        assert_eq!(w.frames_written(), 2);
        let text = String::from_utf8(w.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 8);
        assert_eq!(lines[0], "2");
        assert_eq!(lines[1], "frame 0");
        assert!(lines[2].starts_with("O 1.000000 2.000000 3.000000"));
        assert!(lines[3].starts_with("H -1.500000"));
        assert_eq!(lines[4], "2");
    }

    #[test]
    fn labels_from_masses() {
        use crate::forcefield::ForceField;
        use crate::topology::{push_water, Topology};
        let mut topo = Topology::default();
        push_water(&mut topo, 0, 1);
        let sys = System::new(
            topo,
            ForceField::biomolecular(4.0),
            Cell::cube(10.0),
            vec![Vec3::splat(1.0), Vec3::splat(2.0), Vec3::splat(3.0)],
        );
        let w = XyzWriter::from_system(Vec::new(), &sys);
        assert_eq!(w.labels, vec!["O", "H", "H"]);
    }

    #[test]
    fn rdf_of_ideal_gas_is_flat() {
        // Uniform random points: g(r) ≈ 1 everywhere (beyond tiny-r noise).
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let cell = Cell::cube(20.0);
        let n = 400;
        let frames: Vec<Vec<Vec3>> = (0..8)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        Vec3::new(
                            rng.gen::<f64>() * 20.0,
                            rng.gen::<f64>() * 20.0,
                            rng.gen::<f64>() * 20.0,
                        )
                    })
                    .collect()
            })
            .collect();
        let ids: Vec<u32> = (0..n as u32).collect();
        let (centers, g) = radial_distribution(&cell, &frames, &ids, &ids, 8.0, 16);
        for (r, gv) in centers.iter().zip(&g).skip(2) {
            assert!((gv - 1.0).abs() < 0.25, "g({r:.2}) = {gv}");
        }
    }

    #[test]
    fn rdf_of_a_lattice_has_a_peak_at_the_spacing() {
        // Simple cubic lattice, spacing 4: strong first peak near r = 4.
        let cell = Cell::cube(20.0);
        let mut pos = Vec::new();
        for x in 0..5 {
            for y in 0..5 {
                for z in 0..5 {
                    pos.push(Vec3::new(x as f64 * 4.0, y as f64 * 4.0, z as f64 * 4.0));
                }
            }
        }
        let ids: Vec<u32> = (0..pos.len() as u32).collect();
        let (centers, g) = radial_distribution(&cell, &[pos], &ids, &ids, 7.0, 35);
        // The first coordination shell (6 neighbours at r = 4) shows up as
        // a sharp peak in the 4.0-4.2 bin; below the lattice spacing g must
        // vanish (excluded zone).
        let peak: f64 = centers
            .iter()
            .zip(&g)
            .filter(|(r, _)| (3.9..4.3).contains(*r))
            .map(|(_, gv)| *gv)
            .fold(0.0, f64::max);
        assert!(peak > 3.0, "no first-shell peak near 4.0 (max there {peak})");
        for (r, gv) in centers.iter().zip(&g) {
            if *r < 3.5 {
                assert!(*gv < 0.2, "unexpected density at r={r}: {gv}");
            }
        }
    }

    #[test]
    fn msd_of_ballistic_motion_is_quadratic() {
        let cell = Cell::cube(100.0);
        let v = Vec3::new(0.3, 0.0, 0.0);
        let frames: Vec<Vec<Vec3>> = (0..10)
            .map(|t| vec![Vec3::new(5.0, 5.0, 5.0) + v * t as f64])
            .collect();
        let msd = mean_squared_displacement(&cell, &frames);
        for (t, m) in msd.iter().enumerate() {
            let expect = (0.3 * t as f64).powi(2);
            assert!((m - expect).abs() < 1e-9, "t={t}: {m} vs {expect}");
        }
    }

    #[test]
    fn vacf_of_constant_velocities_is_flat_one() {
        let v = vec![vec![Vec3::new(0.1, -0.2, 0.3); 5]; 10];
        let c = velocity_autocorrelation(&v, 6);
        for (lag, x) in c.iter().enumerate() {
            assert!((x - 1.0).abs() < 1e-12, "lag {lag}: {x}");
        }
    }

    #[test]
    fn vacf_of_alternating_velocities_oscillates() {
        // v flips sign every frame: C(odd) = −1, C(even) = +1.
        let frames: Vec<Vec<Vec3>> = (0..12)
            .map(|t| vec![Vec3::new(if t % 2 == 0 { 1.0 } else { -1.0 }, 0.0, 0.0); 3])
            .collect();
        let c = velocity_autocorrelation(&frames, 4);
        assert!((c[0] - 1.0).abs() < 1e-12);
        assert!((c[1] + 1.0).abs() < 1e-12);
        assert!((c[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diffusion_of_ballistic_motion_grows_with_window() {
        // Ballistic MSD = (vt)² has slope 2v²t — not a constant D, but the
        // estimator must return the slope/6 at the fit window, positive.
        let v = 0.2;
        let msd: Vec<f64> = (0..20).map(|t| (v * t as f64).powi(2)).collect();
        let d = diffusion_coefficient(&msd, 1.0);
        assert!(d > 0.0);
    }

    #[test]
    fn diffusion_of_linear_msd_is_exact() {
        // MSD = 6 D t exactly.
        let d_true = 3.2e-4;
        let msd: Vec<f64> = (0..30).map(|t| 6.0 * d_true * t as f64 * 2.0).collect();
        let d = diffusion_coefficient(&msd, 2.0);
        assert!((d - d_true).abs() < 1e-12, "{d} vs {d_true}");
    }

    #[test]
    fn msd_unwraps_through_the_boundary() {
        // An atom drifting +x crosses the periodic boundary; MSD must keep
        // growing rather than snapping back.
        let cell = Cell::cube(10.0);
        let frames: Vec<Vec<Vec3>> = (0..30)
            .map(|t| vec![cell.wrap(Vec3::new(0.5 + 0.9 * t as f64, 5.0, 5.0))])
            .collect();
        let msd = mean_squared_displacement(&cell, &frames);
        let expect = (0.9 * 29.0f64).powi(2);
        let got = *msd.last().unwrap();
        assert!((got - expect).abs() < 1e-6, "{got} vs {expect}");
    }
}
