//! Minimal 3-component vector used throughout the MD engine.
//!
//! Kept deliberately small and `Copy` so it can live in hot arrays without
//! indirection; all operations are `#[inline]` since the non-bonded kernel
//! calls them millions of times per step.

use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-vector of `f64` components (positions in Å, velocities in Å/fs,
/// forces in kcal/mol/Å depending on context).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// All components set to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Unit vector in the same direction. Returns `None` for (near-)zero
    /// vectors rather than producing NaNs.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Component by axis index (0 = x, 1 = y, 2 = z).
    #[inline]
    pub fn axis(self, a: usize) -> f64 {
        match a {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("axis index out of range: {a}"),
        }
    }

    /// Mutable component by axis index.
    #[inline]
    pub fn axis_mut(&mut self, a: usize) -> &mut f64 {
        match a {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("axis index out of range: {a}"),
        }
    }

    /// True when all components are finite (no NaN / infinity has leaked in).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        self.x += o.x;
        self.y += o.y;
        self.z += o.z;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        self.x -= o.x;
        self.y -= o.y;
        self.z -= o.z;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        self.x *= s;
        self.y *= s;
        self.z *= s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        self.x /= s;
        self.y /= s;
        self.z /= s;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, a: usize) -> &f64 {
        match a {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("axis index out of range: {a}"),
        }
    }
}

impl std::iter::Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn dot_and_norm() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert!(approx(v.norm(), 5.0));
        assert!(approx(v.norm2(), 25.0));
        assert!(approx(v.dot(Vec3::new(1.0, 1.0, 1.0)), 7.0));
    }

    #[test]
    fn cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(approx(c.dot(a), 0.0));
        assert!(approx(c.dot(b), 0.0));
    }

    #[test]
    fn cross_right_handed() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn assign_ops() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::splat(1.0);
        assert_eq!(v, Vec3::splat(2.0));
        v -= Vec3::splat(0.5);
        assert_eq!(v, Vec3::splat(1.5));
        v *= 2.0;
        assert_eq!(v, Vec3::splat(3.0));
        v /= 3.0;
        assert_eq!(v, Vec3::splat(1.0));
    }

    #[test]
    fn normalized_unit_length() {
        let v = Vec3::new(1.0, -2.0, 2.5);
        let n = v.normalized().unwrap();
        assert!(approx(n.norm(), 1.0));
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn axis_accessors() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v.axis(0), 1.0);
        assert_eq!(v.axis(1), 2.0);
        assert_eq!(v.axis(2), 3.0);
        assert_eq!(v[2], 3.0);
        *v.axis_mut(1) = 9.0;
        assert_eq!(v.y, 9.0);
    }

    #[test]
    fn min_max_componentwise() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 3.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 3.0));
    }

    #[test]
    fn sum_iterator() {
        let s: Vec3 = (0..4).map(|i| Vec3::splat(i as f64)).sum();
        assert_eq!(s, Vec3::splat(6.0));
    }

    #[test]
    fn finiteness() {
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }
}
