//! The paper's three benchmark systems, reproduced as synthetic equivalents.
//!
//! Exact atom counts and patch-grid shapes match the paper; geometry is
//! synthetic (see DESIGN.md §2). The patch side used throughout the
//! reproduction is `cutoff + PATCH_MARGIN` — NAMD patches are "slightly
//! larger than the cutoff radius" so that atoms do not migrate between
//! patches every step; 12 + 3.5 = 15.5 Å reproduces ApoA-I's published
//! 7×7×5 = 245-patch grid.

use crate::builders::{SystemBuilder, SystemSpec};
use mdcore::prelude::*;

/// Patch side = cutoff + this margin, Å.
pub const PATCH_MARGIN: f64 = 3.5;

/// The paper's cutoff for all three benchmarks, Å.
pub const PAPER_CUTOFF: f64 = 12.0;

/// A named benchmark: spec plus the paper-derived metadata that tests and
/// benchmark harnesses check against.
#[derive(Debug, Clone)]
pub struct BenchmarkSystem {
    /// Benchmark name as used in the paper ("ApoA-I", "BC1", "bR").
    pub name: &'static str,
    /// Exact atom count (paper value).
    pub n_atoms: usize,
    /// Patch grid at the paper's 12 Å cutoff (paper value).
    pub patch_grid: [usize; 3],
    /// Single-processor seconds per step on ASCI-Red (paper value; used to
    /// cross-check the cost model's calibration).
    pub paper_sec_per_step_asci_red: Option<f64>,
    spec: SystemSpec,
}

impl BenchmarkSystem {
    /// Build the full molecular system (expensive for BC1: ~200k atoms).
    pub fn build(&self) -> System {
        let sys = SystemBuilder::new(self.spec.clone()).build();
        debug_assert_eq!(sys.n_atoms(), self.n_atoms);
        sys
    }

    /// The spec driving the builder (exposed for scaled-down variants).
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Patch side length for the paper cutoff.
    pub fn patch_side(&self) -> f64 {
        self.spec.cutoff + PATCH_MARGIN
    }

    /// A scaled-down version of this benchmark (`frac` of the atoms in a
    /// proportionally smaller box) for cheap tests and examples. The lipid
    /// slab is dropped: at smoke-test scale its clearance shell would
    /// consume most of the water lattice, and the load-imbalance hot-spot
    /// it exists for only matters at full scale.
    pub fn scaled(&self, frac: f64) -> BenchmarkSystem {
        assert!((0.0..=1.0).contains(&frac) && frac > 0.0);
        let s = frac.cbrt();
        let mut spec = self.spec.clone();
        spec.box_lengths *= s;
        spec.target_atoms = ((spec.target_atoms as f64 * frac) as usize).max(30);
        spec.protein_chains = ((spec.protein_chains as f64 * frac).ceil() as usize).max(1);
        // Chain length scales with `frac` (not the linear factor `s`): the
        // solute share of the atom budget must not grow as the system
        // shrinks, or protein-dominated systems (bR) would overflow their
        // own target.
        spec.protein_chain_len =
            (spec.protein_chain_len as f64 * frac / spec.protein_chains.max(1) as f64
                * self.spec.protein_chains.max(1) as f64) as usize;
        spec.lipid_slab = None;
        BenchmarkSystem {
            name: self.name,
            n_atoms: spec.target_atoms,
            patch_grid: [0, 0, 0], // not meaningful for scaled variants
            paper_sec_per_step_asci_red: None,
            spec,
        }
    }
}

/// ApoA-I: 92,224-atom protein+lipid+water assembly, 7×7×5 = 245 patches,
/// 12 Å cutoff, 57.1 s/step on one ASCI-Red PE (Table 2).
pub fn apoa1_like() -> BenchmarkSystem {
    BenchmarkSystem {
        name: "ApoA-I",
        n_atoms: 92_224,
        patch_grid: [7, 7, 5],
        paper_sec_per_step_asci_red: Some(57.1),
        spec: SystemSpec {
            name: "ApoA-I-like",
            box_lengths: Vec3::new(112.0, 112.0, 84.0),
            target_atoms: 92_224,
            protein_chains: 4,
            protein_chain_len: 550,
            // Lipid disc through the box centre — the density hot-spot.
            lipid_slab: Some((32.0, 52.0)),
            cutoff: PAPER_CUTOFF,
            seed: 0xA_90A1,
        },
    }
}

/// BC1: 206,617 atoms in 378 patches (we use a 9×7×6 grid), 12 Å cutoff.
/// The paper's Table 3 scales it to a 1252× speedup on 2048 PEs.
pub fn bc1_like() -> BenchmarkSystem {
    BenchmarkSystem {
        name: "BC1",
        n_atoms: 206_617,
        patch_grid: [9, 7, 6],
        paper_sec_per_step_asci_red: Some(74.2 * 2.0), // 2-PE time × 2 (Table 3 baseline)
        spec: SystemSpec {
            name: "BC1-like",
            box_lengths: Vec3::new(154.0, 123.0, 107.0),
            target_atoms: 206_617,
            protein_chains: 8,
            protein_chain_len: 800,
            lipid_slab: Some((43.5, 63.5)),
            cutoff: PAPER_CUTOFF,
            seed: 0xBC1,
        },
    }
}

/// bR (bacteriorhodopsin): 3,762 atoms in 36 patches (4×3×3), 12 Å cutoff —
/// the paper's small system, which stops scaling past 64 PEs (Table 4).
pub fn br_like() -> BenchmarkSystem {
    BenchmarkSystem {
        name: "bR",
        n_atoms: 3_762,
        patch_grid: [4, 3, 3],
        paper_sec_per_step_asci_red: Some(1.47),
        spec: SystemSpec {
            name: "bR-like",
            box_lengths: Vec3::new(65.0, 50.0, 50.0),
            target_atoms: 3_762,
            // One compact 2,400-atom protein globule (bacteriorhodopsin is a
            // single chain) plus a thin hydration shell — four separate
            // blobs would overlap in a box this small.
            protein_chains: 1,
            protein_chain_len: 2_400,
            lipid_slab: None,
            cutoff: PAPER_CUTOFF,
            seed: 0xB7,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patch_grids_follow_from_box_and_margin() {
        for b in [apoa1_like(), bc1_like(), br_like()] {
            let side = b.patch_side();
            let dims = [
                (b.spec().box_lengths.x / side).floor() as usize,
                (b.spec().box_lengths.y / side).floor() as usize,
                (b.spec().box_lengths.z / side).floor() as usize,
            ];
            assert_eq!(dims, b.patch_grid, "{}: box/side mismatch", b.name);
        }
    }

    #[test]
    fn scaled_benchmark_is_buildable() {
        let small = apoa1_like().scaled(0.01);
        let sys = small.build();
        assert_eq!(sys.n_atoms(), small.n_atoms);
        assert!(sys.n_atoms() > 500);
        assert!(sys.topology.validate().is_ok());
    }

    #[test]
    fn apoa1_density_is_biomolecular() {
        let b = apoa1_like();
        let v = b.spec().box_lengths.x * b.spec().box_lengths.y * b.spec().box_lengths.z;
        let d = b.n_atoms as f64 / v;
        assert!((0.08..0.13).contains(&d), "ApoA-I-like density {d}");
    }
}
