//! The paper's three benchmark systems, reproduced as synthetic equivalents.
//!
//! Exact atom counts and patch-grid shapes match the paper; geometry is
//! synthetic (see DESIGN.md §2). The patch side used throughout the
//! reproduction is `cutoff + PATCH_MARGIN` — NAMD patches are "slightly
//! larger than the cutoff radius" so that atoms do not migrate between
//! patches every step; 12 + 3.5 = 15.5 Å reproduces ApoA-I's published
//! 7×7×5 = 245-patch grid.

use crate::builders::{SystemBuilder, SystemSpec};
use mdcore::prelude::*;

/// Patch side = cutoff + this margin, Å.
pub const PATCH_MARGIN: f64 = 3.5;

/// The paper's cutoff for all three benchmarks, Å.
pub const PAPER_CUTOFF: f64 = 12.0;

/// A named benchmark: spec plus the paper-derived metadata that tests and
/// benchmark harnesses check against.
#[derive(Debug, Clone)]
pub struct BenchmarkSystem {
    /// Benchmark name as used in the paper ("ApoA-I", "BC1", "bR").
    pub name: &'static str,
    /// Exact atom count (paper value).
    pub n_atoms: usize,
    /// Patch grid at the paper's 12 Å cutoff (paper value).
    pub patch_grid: [usize; 3],
    /// Single-processor seconds per step on ASCI-Red (paper value; used to
    /// cross-check the cost model's calibration).
    pub paper_sec_per_step_asci_red: Option<f64>,
    spec: SystemSpec,
}

impl BenchmarkSystem {
    /// Build the full molecular system (expensive for BC1: ~200k atoms).
    pub fn build(&self) -> System {
        let sys = SystemBuilder::new(self.spec.clone()).build();
        debug_assert_eq!(sys.n_atoms(), self.n_atoms);
        sys
    }

    /// The spec driving the builder (exposed for scaled-down variants).
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Patch side length for the paper cutoff.
    pub fn patch_side(&self) -> f64 {
        self.spec.cutoff + PATCH_MARGIN
    }

    /// Wrap a raw [`SystemSpec`] as a benchmark entry. Atom count and the
    /// patch grid are derived from the spec (the grid matches what the
    /// engine's `PatchGrid::build` computes: `floor(len / side)` per axis,
    /// at least 1); there is no paper-measured metadata. This is how the
    /// scenario zoo ([`crate::zoo`]) produces `BenchmarkSystem`-compatible
    /// specs.
    pub fn from_spec(name: &'static str, spec: SystemSpec) -> BenchmarkSystem {
        let side = spec.cutoff + PATCH_MARGIN;
        let dim = |len: f64| ((len / side).floor() as usize).max(1);
        BenchmarkSystem {
            name,
            n_atoms: spec.target_atoms,
            patch_grid: [
                dim(spec.box_lengths.x),
                dim(spec.box_lengths.y),
                dim(spec.box_lengths.z),
            ],
            paper_sec_per_step_asci_red: None,
            spec,
        }
    }

    /// A scaled version of this benchmark: `frac` of the atoms in a box
    /// scaled to preserve the original atom density. `frac < 1` shrinks
    /// (cheap tests and examples); `frac > 1` grows (weak-scaling sweeps
    /// that hold atoms-per-PE fixed while the PE count rises). Two
    /// invariants hold at any fraction:
    ///
    /// * **density** — `target_atoms` follows the *actual* scaled volume,
    ///   so when a tiny fraction clamps against the minimum box below the
    ///   system stays liquid-like instead of over-packing;
    /// * **patch grid** — every axis stays at least one patch side
    ///   (`cutoff + PATCH_MARGIN`) long, and `patch_grid` is recomputed
    ///   from the scaled box instead of left degenerate.
    ///
    /// The lipid slab is dropped when shrinking (at smoke-test scale its
    /// clearance shell would consume most of the water lattice) and kept —
    /// rescaled along z — when growing.
    pub fn scaled(&self, frac: f64) -> BenchmarkSystem {
        assert!(
            frac > 0.0 && frac.is_finite(),
            "scale fraction must be positive and finite, got {frac}"
        );
        let spec0 = &self.spec;
        let vol0 = spec0.box_lengths.x * spec0.box_lengths.y * spec0.box_lengths.z;
        let density = spec0.target_atoms as f64 / vol0;
        let s = frac.cbrt();
        let mut spec = spec0.clone();
        spec.box_lengths *= s;
        let min_len = spec.cutoff + PATCH_MARGIN;
        spec.box_lengths.x = spec.box_lengths.x.max(min_len);
        spec.box_lengths.y = spec.box_lengths.y.max(min_len);
        spec.box_lengths.z = spec.box_lengths.z.max(min_len);
        let vol = spec.box_lengths.x * spec.box_lengths.y * spec.box_lengths.z;
        // 33 atoms = 11 waters, the smallest box that still exercises the
        // water-fill path meaningfully.
        spec.target_atoms = ((density * vol).round() as usize).max(33);
        if spec0.protein_chains > 0 && spec0.protein_chain_len > 0 {
            spec.protein_chains = ((spec0.protein_chains as f64 * frac).ceil() as usize).max(1);
            // Total solute scales with `frac` (not the linear factor `s`),
            // capped at 60% of the budget so the water fill stays
            // satisfiable even when the box is clamped at tiny fractions.
            let solute0 = (spec0.protein_chains * spec0.protein_chain_len) as f64;
            let cap = spec.target_atoms * 3 / 5;
            let total = ((solute0 * frac).round() as usize).min(cap);
            spec.protein_chain_len = total / spec.protein_chains;
        }
        spec.lipid_slab = if frac >= 1.0 {
            spec0.lipid_slab.map(|(z0, z1)| (z0 * s, z1 * s))
        } else {
            None
        };
        BenchmarkSystem::from_spec(self.name, spec)
    }
}

/// ApoA-I: 92,224-atom protein+lipid+water assembly, 7×7×5 = 245 patches,
/// 12 Å cutoff, 57.1 s/step on one ASCI-Red PE (Table 2).
pub fn apoa1_like() -> BenchmarkSystem {
    BenchmarkSystem {
        name: "ApoA-I",
        n_atoms: 92_224,
        patch_grid: [7, 7, 5],
        paper_sec_per_step_asci_red: Some(57.1),
        spec: SystemSpec {
            name: "ApoA-I-like",
            box_lengths: Vec3::new(112.0, 112.0, 84.0),
            target_atoms: 92_224,
            protein_chains: 4,
            protein_chain_len: 550,
            // Lipid disc through the box centre — the density hot-spot.
            lipid_slab: Some((32.0, 52.0)),
            cutoff: PAPER_CUTOFF,
            seed: 0xA_90A1,
        },
    }
}

/// BC1: 206,617 atoms in 378 patches (we use a 9×7×6 grid), 12 Å cutoff.
/// The paper's Table 3 scales it to a 1252× speedup on 2048 PEs.
pub fn bc1_like() -> BenchmarkSystem {
    BenchmarkSystem {
        name: "BC1",
        n_atoms: 206_617,
        patch_grid: [9, 7, 6],
        paper_sec_per_step_asci_red: Some(74.2 * 2.0), // 2-PE time × 2 (Table 3 baseline)
        spec: SystemSpec {
            name: "BC1-like",
            box_lengths: Vec3::new(154.0, 123.0, 107.0),
            target_atoms: 206_617,
            protein_chains: 8,
            protein_chain_len: 800,
            lipid_slab: Some((43.5, 63.5)),
            cutoff: PAPER_CUTOFF,
            seed: 0xBC1,
        },
    }
}

/// bR (bacteriorhodopsin): 3,762 atoms in 36 patches (4×3×3), 12 Å cutoff —
/// the paper's small system, which stops scaling past 64 PEs (Table 4).
pub fn br_like() -> BenchmarkSystem {
    BenchmarkSystem {
        name: "bR",
        n_atoms: 3_762,
        patch_grid: [4, 3, 3],
        paper_sec_per_step_asci_red: Some(1.47),
        spec: SystemSpec {
            name: "bR-like",
            box_lengths: Vec3::new(65.0, 50.0, 50.0),
            target_atoms: 3_762,
            // One compact 2,400-atom protein globule (bacteriorhodopsin is a
            // single chain) plus a thin hydration shell — four separate
            // blobs would overlap in a box this small.
            protein_chains: 1,
            protein_chain_len: 2_400,
            lipid_slab: None,
            cutoff: PAPER_CUTOFF,
            seed: 0xB7,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patch_grids_follow_from_box_and_margin() {
        for b in [apoa1_like(), bc1_like(), br_like()] {
            let side = b.patch_side();
            let dims = [
                (b.spec().box_lengths.x / side).floor() as usize,
                (b.spec().box_lengths.y / side).floor() as usize,
                (b.spec().box_lengths.z / side).floor() as usize,
            ];
            assert_eq!(dims, b.patch_grid, "{}: box/side mismatch", b.name);
        }
    }

    #[test]
    fn scaled_benchmark_is_buildable() {
        let small = apoa1_like().scaled(0.01);
        let sys = small.build();
        assert_eq!(sys.n_atoms(), small.n_atoms);
        assert!(sys.n_atoms() > 500);
        assert!(sys.topology.validate().is_ok());
    }

    /// Mean atom density of a benchmark spec (atoms/Å³ over the full box).
    fn density(b: &BenchmarkSystem) -> f64 {
        let v = b.spec().box_lengths.x * b.spec().box_lengths.y * b.spec().box_lengths.z;
        b.n_atoms as f64 / v
    }

    #[test]
    fn scaled_preserves_density_at_extreme_fractions() {
        for base in [apoa1_like(), bc1_like(), br_like()] {
            let d0 = density(&base);
            for frac in [1e-4, 0.01, 0.5, 1.0, 2.0, 4.0] {
                let b = base.scaled(frac);
                let d = density(&b);
                assert!(
                    (0.6..=1.4).contains(&(d / d0)),
                    "{} scaled({frac}): density {d} vs base {d0}",
                    base.name
                );
            }
        }
    }

    #[test]
    fn scaled_patch_grid_is_valid_and_derived() {
        for base in [apoa1_like(), br_like()] {
            for frac in [1e-4, 0.05, 1.0, 3.0] {
                let b = base.scaled(frac);
                let side = b.patch_side();
                for a in 0..3 {
                    let len = [b.spec().box_lengths.x, b.spec().box_lengths.y, b.spec().box_lengths.z][a];
                    // Box never shrinks below one patch side...
                    assert!(
                        len >= side - 1e-9,
                        "{} scaled({frac}) axis {a}: {len} < {side}",
                        base.name
                    );
                    // ...and the grid matches the engine's derivation.
                    let dim = ((len / side).floor() as usize).max(1);
                    assert_eq!(b.patch_grid[a], dim, "{} scaled({frac}) axis {a}", base.name);
                }
                assert!(b.patch_grid.iter().all(|&d| d >= 1));
            }
        }
    }

    #[test]
    fn scaled_tiny_fraction_builds() {
        // The clamp means even absurdly small fractions produce a buildable,
        // liquid-like minimum box.
        for base in [apoa1_like(), br_like()] {
            let b = base.scaled(1e-6);
            let sys = b.build();
            assert_eq!(sys.n_atoms(), b.n_atoms);
            assert!(sys.topology.validate().is_ok(), "{}", base.name);
        }
    }

    #[test]
    fn scaled_huge_fraction_grows_system() {
        let base = br_like();
        let b = base.scaled(4.0);
        assert!(
            (b.n_atoms as f64) > 3.2 * base.n_atoms as f64
                && (b.n_atoms as f64) < 4.8 * base.n_atoms as f64,
            "4x bR: {} atoms from {}",
            b.n_atoms,
            base.n_atoms
        );
        assert!(b.patch_grid.iter().product::<usize>() > base.patch_grid.iter().product::<usize>());
        let sys = b.build();
        assert_eq!(sys.n_atoms(), b.n_atoms);
        assert!(sys.topology.validate().is_ok());
    }

    #[test]
    fn scaled_identity_fraction_keeps_spec() {
        let base = apoa1_like();
        let b = base.scaled(1.0);
        assert_eq!(b.n_atoms, base.n_atoms);
        assert_eq!(b.patch_grid, base.patch_grid);
        assert!((b.spec().box_lengths.x - base.spec().box_lengths.x).abs() < 1e-9);
        // Growing keeps (and rescales) the lipid slab; frac == 1 keeps it
        // exactly.
        assert_eq!(b.spec().lipid_slab, base.spec().lipid_slab);
        let up = base.scaled(2.0);
        let (z0, z1) = up.spec().lipid_slab.expect("slab kept when growing");
        let s = 2.0f64.cbrt();
        assert!((z0 - 32.0 * s).abs() < 1e-9 && (z1 - 52.0 * s).abs() < 1e-9);
        let down = base.scaled(0.5);
        assert_eq!(down.spec().lipid_slab, None, "slab dropped when shrinking");
    }

    #[test]
    fn scaled_atom_count_is_monotone_in_fraction() {
        let base = apoa1_like();
        let mut last = 0usize;
        for frac in [1e-5, 1e-3, 0.01, 0.1, 0.5, 1.0, 2.0] {
            let n = base.scaled(frac).n_atoms;
            assert!(n >= last, "scaled({frac}): {n} < {last}");
            last = n;
        }
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn scaled_rejects_zero_fraction() {
        let _ = apoa1_like().scaled(0.0);
    }

    #[test]
    fn apoa1_density_is_biomolecular() {
        let b = apoa1_like();
        let v = b.spec().box_lengths.x * b.spec().box_lengths.y * b.spec().box_lengths.z;
        let d = b.n_atoms as f64 / v;
        assert!((0.08..0.13).contains(&d), "ApoA-I-like density {d}");
    }
}
