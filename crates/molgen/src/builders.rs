//! System builders: water fill, protein-like polymer chains, lipid slabs.

use mdcore::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Declarative description of a synthetic system.
#[derive(Debug, Clone)]
pub struct SystemSpec {
    /// Name used in logs and benchmark output.
    pub name: &'static str,
    /// Box edge lengths, Å (fully periodic).
    pub box_lengths: Vec3,
    /// Exact total atom count the builder must produce.
    pub target_atoms: usize,
    /// Number of protein-like polymer chains.
    pub protein_chains: usize,
    /// Heavy atoms per protein chain.
    pub protein_chain_len: usize,
    /// Optional lipid slab `(z_min, z_max)`: the region is packed with
    /// vertical hydrocarbon-like chains, raising local density.
    pub lipid_slab: Option<(f64, f64)>,
    /// Non-bonded cutoff used for the force field, Å.
    pub cutoff: f64,
    /// RNG seed; every output is a pure function of the spec.
    pub seed: u64,
}

impl SystemSpec {
    /// Restrain every protein heavy atom to its generated position with the
    /// given force constant (kcal/mol/Å²) — equilibration-style pinning.
    /// Applied by [`SystemBuilder::build_restrained`].
    pub fn protein_restraint_k() -> f64 {
        5.0
    }
}

/// Builds an [`mdcore::system::System`] from a [`SystemSpec`].
pub struct SystemBuilder {
    spec: SystemSpec,
    rng: ChaCha8Rng,
    topo: Topology,
    pos: Vec<Vec3>,
    /// Hash-grid over already-placed solute atoms (2.6 Å buckets) so chains
    /// and lipids never interpenetrate — self-overlapping geometry would
    /// blow up the r⁻¹² Lennard-Jones term and make NVE dynamics explode.
    buckets: std::collections::HashMap<(i32, i32, i32), Vec<u32>>,
}

/// Minimum distance between non-bonded solute atoms at generation time, Å.
const SOLUTE_CLEARANCE: f64 = 2.0;
/// Bucket edge for the solute hash grid; must be ≥ SOLUTE_CLEARANCE.
const BUCKET: f64 = 2.6;

/// Minimum distance between a water oxygen and any solute atom, Å.
const WATER_CLEARANCE: f64 = 2.4;
/// Water lattice spacing. 3.0 Å gives ≈0.111 atoms/Å³, slightly above liquid
/// water's 0.100 — the headroom lets boxes hit their exact target atom count
/// even after solute clearance carves out lattice sites.
const WATER_SPACING: f64 = 3.0;
/// Lipid chain spacing in the membrane plane, Å. With ~1 Å vertical rise per
/// bead this packs the slab to ≈0.128 atoms/Å³, denser than the surrounding
/// water — the density hot-spot that drives load imbalance.
const LIPID_SPACING: f64 = 2.8;

impl SystemBuilder {
    /// Start a builder for the given spec.
    pub fn new(spec: SystemSpec) -> Self {
        assert!(spec.cutoff > 0.0);
        let rng = ChaCha8Rng::seed_from_u64(spec.seed);
        SystemBuilder {
            spec,
            rng,
            topo: Topology::default(),
            pos: Vec::new(),
            buckets: Default::default(),
        }
    }

    /// Bucket key of a (wrapped) position.
    fn bucket_of(&self, p: Vec3) -> (i32, i32, i32) {
        (
            (p.x / BUCKET).floor() as i32,
            (p.y / BUCKET).floor() as i32,
            (p.z / BUCKET).floor() as i32,
        )
    }

    /// Buckets per axis — neighbour lookups wrap modulo these so clearance
    /// checks see atoms across the periodic boundary.
    fn bucket_counts(&self) -> (i32, i32, i32) {
        let n = |len: f64| ((len / BUCKET).ceil() as i32).max(1);
        (
            n(self.spec.box_lengths.x),
            n(self.spec.box_lengths.y),
            n(self.spec.box_lengths.z),
        )
    }

    /// Record a placed solute atom in the hash grid.
    fn bucket_insert(&mut self, atom: u32, p: Vec3) {
        let cell = Cell::periodic(Vec3::ZERO, self.spec.box_lengths);
        let key = self.bucket_of(cell.wrap(p));
        self.buckets.entry(key).or_default().push(atom);
    }

    /// Minimum distance from `p` to any placed solute atom except `skip`
    /// (the bonded predecessor). Only needs to look at neighbouring buckets.
    fn min_solute_dist(&self, p: Vec3, skip: Option<u32>) -> f64 {
        let cell = Cell::periodic(Vec3::ZERO, self.spec.box_lengths);
        let q = cell.wrap(p);
        let (bx, by, bz) = self.bucket_of(q);
        let (nx, ny, nz) = self.bucket_counts();
        let mut best = f64::INFINITY;
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    let key = (
                        (bx + dx).rem_euclid(nx),
                        (by + dy).rem_euclid(ny),
                        (bz + dz).rem_euclid(nz),
                    );
                    if let Some(list) = self.buckets.get(&key) {
                        for &a in list {
                            if Some(a) == skip {
                                continue;
                            }
                            best = best.min(cell.dist2(q, self.pos[a as usize]).sqrt());
                        }
                    }
                }
            }
        }
        best
    }

    /// Like [`SystemBuilder::build`], but additionally restrains every
    /// protein atom to its generated position (k = 5 kcal/mol/Å²).
    pub fn build_restrained(self) -> System {
        let n_protein = self.spec.protein_chains * self.spec.protein_chain_len;
        let mut sys = self.build();
        for i in 0..n_protein {
            sys.topology.restraints.push(Restraint {
                atom: i as AtomId,
                k: SystemSpec::protein_restraint_k(),
                target: sys.positions[i],
            });
        }
        sys
    }

    /// Produce the finished system: protein chains, then the lipid slab,
    /// then water filled to hit `target_atoms` exactly, thermalized at 300 K.
    pub fn build(mut self) -> System {
        let chains = self.spec.protein_chains;
        let chain_len = self.spec.protein_chain_len;
        for c in 0..chains {
            self.add_protein_chain(c, chain_len);
        }
        if let Some((z0, z1)) = self.spec.lipid_slab {
            self.add_lipid_slab(z0, z1);
        }
        self.fill_water();

        let cell = Cell::periodic(Vec3::ZERO, self.spec.box_lengths);
        let pos = self.pos.iter().map(|&p| cell.wrap(p)).collect();
        let ff = ForceField::biomolecular(self.spec.cutoff);
        let mut sys = System::new(self.topo, ff, cell, pos);
        sys.thermalize(300.0, self.spec.seed.wrapping_mul(0x9E37_79B9));
        sys
    }

    /// Centre of the box.
    fn center(&self) -> Vec3 {
        self.spec.box_lengths * 0.5
    }

    /// A protein-like polymer: a confined random walk of heavy atoms with
    /// bonds, angles, and dihedrals along the backbone. Chains are placed on
    /// a ring around the box centre (mimicking ApoA-I's protein belt).
    fn add_protein_chain(&mut self, chain_index: usize, len: usize) {
        if len == 0 {
            return;
        }
        let nc = self.spec.protein_chains.max(1) as f64;
        let angle = 2.0 * std::f64::consts::PI * chain_index as f64 / nc;
        let ring_r = if self.spec.protein_chains > 1 {
            0.3 * self.spec.box_lengths.x.min(self.spec.box_lengths.y)
        } else {
            0.0
        };
        let start = self.center() + Vec3::new(ring_r * angle.cos(), ring_r * angle.sin(), 0.0);
        // Confine the walk to a blob sized for ~0.055 heavy atoms/Å³ —
        // dense enough to read as a solute core, dilute enough that the
        // self-avoiding walk essentially never cages itself.
        let blob_r = (3.0 * len as f64 / (4.0 * std::f64::consts::PI * 0.055)).cbrt();

        let first = self.topo.atoms.len() as AtomId;
        let mut p = start;
        let bond_len = 1.5;
        for i in 0..len {
            let lj_type = if i % 2 == 0 { 2u16 } else { 3u16 };
            let charge = if i % 2 == 0 { 0.25 } else { -0.25 };
            let idx = self.topo.atoms.len() as u32;
            self.topo.atoms.push(Atom { mass: 13.0, charge, lj_type });
            self.pos.push(p);
            self.bucket_insert(idx, p);
            if i + 1 == len {
                break;
            }
            // Self-avoiding walk: sample candidate steps (biased back toward
            // the blob centre when outside it) and take the first that keeps
            // clear of every placed solute atom except the bond predecessor.
            // If all biased candidates clash, retry unbiased; as a final
            // fallback stretch the bond toward the clearest direction —
            // a stretched harmonic bond costs a few hundred kcal/mol and
            // relaxes, whereas an r⁻¹² clash destroys the dynamics.
            let mut best = (f64::NEG_INFINITY, p + Vec3::new(bond_len, 0.0, 0.0));
            let mut accepted = false;
            for round in 0..2 {
                let tries = if round == 0 { 40 } else { 60 };
                for _ in 0..tries {
                    let mut dir = Vec3::new(
                        self.rng.gen::<f64>() - 0.5,
                        self.rng.gen::<f64>() - 0.5,
                        self.rng.gen::<f64>() - 0.5,
                    );
                    if round == 0 {
                        let back = start - p;
                        if back.norm() > blob_r {
                            dir += back.normalized().unwrap_or(Vec3::ZERO) * 1.5;
                        }
                    }
                    let step = dir.normalized().unwrap_or(Vec3::new(1.0, 0.0, 0.0)) * bond_len;
                    let cand = p + step;
                    let clearance = self.min_solute_dist(cand, Some(idx));
                    if clearance > best.0 {
                        best = (clearance, cand);
                    }
                    if clearance >= SOLUTE_CLEARANCE {
                        accepted = true;
                        break;
                    }
                }
                if accepted {
                    break;
                }
            }
            if !accepted && best.0 < SOLUTE_CLEARANCE {
                // Stretch the bond along the clearest direction found: a
                // stretched harmonic bond is survivable, an r⁻¹² clash is
                // not, so always take the clearest stretched candidate.
                let dir = (best.1 - p).normalized().unwrap_or(Vec3::new(1.0, 0.0, 0.0));
                for stretch in [2.0, 2.5, 3.0, 3.5, 4.5, 6.0] {
                    let cand = p + dir * stretch;
                    let clearance = self.min_solute_dist(cand, Some(idx));
                    if clearance > best.0 {
                        best = (clearance, cand);
                    }
                    if clearance >= SOLUTE_CLEARANCE * 0.95 {
                        break;
                    }
                }
            }
            p = best.1;
        }
        // Backbone bonded terms.
        for i in 0..len.saturating_sub(1) {
            let a = first + i as AtomId;
            self.topo.bonds.push(Bond { a, b: a + 1, k: 250.0, r0: bond_len });
        }
        for i in 0..len.saturating_sub(2) {
            let a = first + i as AtomId;
            self.topo.angles.push(Angle {
                a,
                b: a + 1,
                c: a + 2,
                k: 45.0,
                theta0: 109.5_f64.to_radians(),
            });
        }
        for i in 0..len.saturating_sub(3) {
            let a = first + i as AtomId;
            self.topo.dihedrals.push(Dihedral {
                a,
                b: a + 1,
                c: a + 2,
                d: a + 3,
                k: 0.6,
                n: 3,
                delta: 0.0,
            });
        }
        // A few impropers along the chain (every 4th atom as a branch-like
        // planar centre) to exercise the 4-body improper kernel.
        for i in (4..len.saturating_sub(4)).step_by(4) {
            let a = first + i as AtomId;
            self.topo.impropers.push(Improper {
                a,
                b: a - 1,
                c: a + 1,
                d: a + 2,
                k: 10.0,
                psi0: 0.0,
            });
        }
    }

    /// A lipid-like slab: vertical hydrocarbon chains (≈1 Å rise per bead)
    /// on a jittered xy grid filling `z0..z1`. Creates the density hot-spot
    /// that drives load imbalance in the ApoA-I benchmark.
    fn add_lipid_slab(&mut self, z0: f64, z1: f64) {
        assert!(z1 > z0, "lipid slab must have positive thickness");
        let tail_len = ((z1 - z0).round() as usize).max(4);
        let spacing_xy = LIPID_SPACING;
        let dz = (z1 - z0) / tail_len as f64;
        let nx = (self.spec.box_lengths.x / spacing_xy).floor() as usize;
        let ny = (self.spec.box_lengths.y / spacing_xy).floor() as usize;
        for ix in 0..nx {
            for iy in 0..ny {
                let jx: f64 = self.rng.gen::<f64>() - 0.5;
                let jy: f64 = self.rng.gen::<f64>() - 0.5;
                let x = (ix as f64 + 0.5) * spacing_xy + jx;
                let y = (iy as f64 + 0.5) * spacing_xy + jy;
                // Skip columns that would interpenetrate already-placed
                // solute (e.g. the protein chains threading the slab).
                let column_clear = (0..tail_len).all(|iz| {
                    let bead = Vec3::new(x, y, z0 + (iz as f64 + 0.5) * dz);
                    self.min_solute_dist(bead, None) >= SOLUTE_CLEARANCE
                });
                if !column_clear {
                    continue;
                }
                let first = self.topo.atoms.len() as AtomId;
                for iz in 0..tail_len {
                    // Head bead carries a small charge; tail is apolar.
                    let charge = if iz == 0 { -0.3 } else if iz == 1 { 0.3 } else { 0.0 };
                    let idx = self.topo.atoms.len() as u32;
                    self.topo.atoms.push(Atom { mass: 14.0, charge, lj_type: 4 });
                    let bead = Vec3::new(x, y, z0 + (iz as f64 + 0.5) * dz);
                    self.pos.push(bead);
                    self.bucket_insert(idx, bead);
                }
                for i in 0..tail_len - 1 {
                    let a = first + i as AtomId;
                    self.topo.bonds.push(Bond { a, b: a + 1, k: 220.0, r0: dz });
                }
                for i in 0..tail_len - 2 {
                    let a = first + i as AtomId;
                    self.topo.angles.push(Angle {
                        a,
                        b: a + 1,
                        c: a + 2,
                        k: 40.0,
                        theta0: std::f64::consts::PI,
                    });
                }
            }
        }
    }

    /// Fill the rest of the box with water on a jittered lattice (sites
    /// visited in shuffled order so any shortfall is spread uniformly),
    /// skipping sites too close to solute atoms, until `target_atoms` is
    /// reached exactly. When the remaining atom budget is not a multiple of
    /// three, 1-2 counter-ions are placed first to absorb the remainder.
    /// Panics if the box cannot accommodate the target (a spec bug).
    fn fill_water(&mut self) {
        let n_solute = self.topo.n_atoms();
        assert!(
            self.spec.target_atoms >= n_solute,
            "{}: solute already has {n_solute} atoms, target is {}",
            self.spec.name,
            self.spec.target_atoms
        );
        let remaining = self.spec.target_atoms - n_solute;
        let n_ions = remaining % 3;
        let n_waters = (remaining - n_ions) / 3;

        // Cell list over solute for clearance queries.
        let cell = Cell::periodic(Vec3::ZERO, self.spec.box_lengths);
        let wrapped: Vec<Vec3> = self.pos.iter().map(|&p| cell.wrap(p)).collect();
        let solute_cl = if wrapped.is_empty() {
            None
        } else {
            Some(CellList::build(&cell, &wrapped, WATER_CLEARANCE.max(3.0)))
        };

        let nx = (self.spec.box_lengths.x / WATER_SPACING).floor() as usize;
        let ny = (self.spec.box_lengths.y / WATER_SPACING).floor() as usize;
        let nz = (self.spec.box_lengths.z / WATER_SPACING).floor() as usize;
        let clearance2 = WATER_CLEARANCE * WATER_CLEARANCE;

        // Fisher-Yates shuffle of the site order (deterministic from seed).
        let mut sites: Vec<usize> = (0..nx * ny * nz).collect();
        for i in (1..sites.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            sites.swap(i, j);
        }

        let mut placed_waters = 0usize;
        let mut placed_ions = 0usize;
        for s in sites {
            if placed_waters == n_waters && placed_ions == n_ions {
                break;
            }
            let (ix, iy, iz) = (s % nx, (s / nx) % ny, s / (nx * ny));
            let jitter = Vec3::new(
                (self.rng.gen::<f64>() - 0.5) * 0.6,
                (self.rng.gen::<f64>() - 0.5) * 0.6,
                (self.rng.gen::<f64>() - 0.5) * 0.6,
            );
            let o = cell.wrap(
                Vec3::new(
                    (ix as f64 + 0.5) * WATER_SPACING,
                    (iy as f64 + 0.5) * WATER_SPACING,
                    (iz as f64 + 0.5) * WATER_SPACING,
                ) + jitter,
            );
            if let Some(cl) = &solute_cl {
                if Self::too_close(cl, &wrapped, &cell, o, clearance2) {
                    continue;
                }
            }
            if placed_ions < n_ions {
                // Sodium-like counter-ion.
                let charge = if placed_ions == 0 { 1.0 } else { -1.0 };
                self.topo.atoms.push(Atom { mass: 22.99, charge, lj_type: 3 });
                self.pos.push(o);
                placed_ions += 1;
                continue;
            }
            push_water(&mut self.topo, 0, 1);
            // Random orientation for the two hydrogens.
            let theta: f64 = self.rng.gen::<f64>() * std::f64::consts::PI;
            let phi: f64 = self.rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
            let h1_dir =
                Vec3::new(theta.sin() * phi.cos(), theta.sin() * phi.sin(), theta.cos());
            // Second O-H at the TIP3P angle from the first, in the plane
            // defined by h1 and a perpendicular.
            let perp = h1_dir
                .cross(Vec3::new(0.0, 0.0, 1.0))
                .normalized()
                .unwrap_or(Vec3::new(1.0, 0.0, 0.0));
            let a = 104.52_f64.to_radians();
            let h2_dir = h1_dir * a.cos() + perp * a.sin();
            self.pos.push(o);
            self.pos.push(o + h1_dir * 0.9572);
            self.pos.push(o + h2_dir * 0.9572);
            placed_waters += 1;
        }
        // Lattice exhausted? Squeeze the remainder in with rejection
        // sampling: random positions clear of solute and of already-placed
        // water oxygens. This covers boxes where solute clearance shells eat
        // most of the lattice.
        if placed_waters < n_waters || placed_ions < n_ions {
            let mut o_positions: Vec<Vec3> = Vec::new();
            for i in 0..self.topo.n_atoms() {
                // Water oxygens are every third atom of the water block; but
                // simply collecting all O-type (mass ≈ 16) water atoms works.
                if (self.topo.atoms[i].mass - 15.9994).abs() < 1e-6 {
                    o_positions.push(cell.wrap(self.pos[i]));
                }
            }
            let o_clear2 = 2.3f64 * 2.3;
            let mut tries = 0usize;
            let shortfall = (n_waters - placed_waters) + (n_ions - placed_ions);
            let max_tries = 500 * shortfall + 1000;
            while (placed_waters < n_waters || placed_ions < n_ions) && tries < max_tries {
                tries += 1;
                let o = Vec3::new(
                    self.rng.gen::<f64>() * self.spec.box_lengths.x,
                    self.rng.gen::<f64>() * self.spec.box_lengths.y,
                    self.rng.gen::<f64>() * self.spec.box_lengths.z,
                );
                if let Some(cl) = &solute_cl {
                    if Self::too_close(cl, &wrapped, &cell, o, clearance2) {
                        continue;
                    }
                }
                if o_positions.iter().any(|&p| cell.dist2(o, p) < o_clear2) {
                    continue;
                }
                if placed_ions < n_ions {
                    let charge = if placed_ions == 0 { 1.0 } else { -1.0 };
                    self.topo.atoms.push(Atom { mass: 22.99, charge, lj_type: 3 });
                    self.pos.push(o);
                    placed_ions += 1;
                } else {
                    push_water(&mut self.topo, 0, 1);
                    let theta: f64 = self.rng.gen::<f64>() * std::f64::consts::PI;
                    let phi: f64 = self.rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
                    let h1 = Vec3::new(
                        theta.sin() * phi.cos(),
                        theta.sin() * phi.sin(),
                        theta.cos(),
                    );
                    let perp = h1
                        .cross(Vec3::new(0.0, 0.0, 1.0))
                        .normalized()
                        .unwrap_or(Vec3::new(1.0, 0.0, 0.0));
                    let a = 104.52_f64.to_radians();
                    let h2 = h1 * a.cos() + perp * a.sin();
                    self.pos.push(o);
                    self.pos.push(o + h1 * 0.9572);
                    self.pos.push(o + h2 * 0.9572);
                    placed_waters += 1;
                }
                o_positions.push(o);
            }
        }
        assert_eq!(
            (placed_waters, placed_ions),
            (n_waters, n_ions),
            "{}: box too small or too crowded — placed {placed_waters}/{n_waters} waters, \
             {placed_ions}/{n_ions} ions",
            self.spec.name
        );
    }

    /// True when `p` is within `sqrt(clearance2)` of any solute atom.
    fn too_close(
        cl: &CellList,
        solute: &[Vec3],
        cell: &Cell,
        p: Vec3,
        clearance2: f64,
    ) -> bool {
        // Check the bin of `p` and all neighbouring bins.
        let b = cl.bin_of(p);
        let c = cl.bin_coords(b);
        for dz in -1isize..=1 {
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    let nb = cl.bin_index([
                        c[0] as isize + dx,
                        c[1] as isize + dy,
                        c[2] as isize + dz,
                    ]);
                    if let Some(nb) = nb {
                        for &i in cl.bin(nb) {
                            if cell.dist2(p, solute[i as usize]) < clearance2 {
                                return true;
                            }
                        }
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn water_only_box() {
        let sys = SystemBuilder::new(SystemSpec {
            name: "wb",
            box_lengths: Vec3::splat(18.0),
            target_atoms: 300,
            protein_chains: 0,
            protein_chain_len: 0,
            lipid_slab: None,
            cutoff: 8.0,
            seed: 1,
        })
        .build();
        assert_eq!(sys.n_atoms(), 300);
        // All-water: 100 molecules, 200 bonds, 100 angles.
        assert_eq!(sys.topology.bonds.len(), 200);
        assert_eq!(sys.topology.angles.len(), 100);
        assert!(sys.topology.dihedrals.is_empty());
    }

    #[test]
    fn water_density_is_liquid_like() {
        let sys = SystemBuilder::new(SystemSpec {
            name: "dens",
            box_lengths: Vec3::splat(31.0),
            target_atoms: 2898,
            protein_chains: 0,
            protein_chain_len: 0,
            lipid_slab: None,
            cutoff: 12.0,
            seed: 2,
        })
        .build();
        let density = sys.n_atoms() as f64 / sys.cell.volume();
        assert!((0.08..0.12).contains(&density), "atom density {density}");
    }

    #[test]
    fn protein_chain_keeps_water_clear() {
        let sys = SystemBuilder::new(SystemSpec {
            name: "clear",
            box_lengths: Vec3::splat(28.0),
            target_atoms: 1540,
            protein_chains: 1,
            protein_chain_len: 40,
            lipid_slab: None,
            cutoff: 8.0,
            seed: 5,
        })
        .build();
        // Water oxygens (every water's first atom) at least ~2 Å from any
        // protein atom: check pairwise against the 40 protein atoms.
        let protein: Vec<Vec3> = sys.positions[..40].to_vec();
        for i in (40..sys.n_atoms()).step_by(3) {
            let o = sys.positions[i];
            for &pp in &protein {
                let d2 = sys.cell.dist2(o, pp);
                assert!(d2 > 2.0 * 2.0, "water O too close to protein: {}", d2.sqrt());
            }
        }
    }

    #[test]
    fn ion_top_up_hits_exact_target() {
        // 301 = 100 waters + 1 ion; 302 = 100 waters + 2 ions.
        for target in [301usize, 302] {
            let sys = SystemBuilder::new(SystemSpec {
                name: "ions",
                box_lengths: Vec3::splat(20.0),
                target_atoms: target,
                protein_chains: 0,
                protein_chain_len: 0,
                lipid_slab: None,
                cutoff: 8.0,
                seed: 1,
            })
            .build();
            assert_eq!(sys.n_atoms(), target);
            let n_ions = sys.topology.atoms.iter().filter(|a| a.mass > 22.0).count();
            assert_eq!(n_ions, target - 300);
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn overfull_box_is_rejected() {
        SystemBuilder::new(SystemSpec {
            name: "overfull",
            box_lengths: Vec3::splat(10.0),
            target_atoms: 30_000,
            protein_chains: 0,
            protein_chain_len: 0,
            lipid_slab: None,
            cutoff: 8.0,
            seed: 1,
        })
        .build();
    }
}
