//! # molgen — synthetic biomolecular benchmark systems
//!
//! The paper's three benchmarks are real simulation decks we cannot obtain:
//!
//! * **ApoA-I** — 92,224-atom high-density lipoprotein particle
//!   (protein + lipid + water), 245 patches (7×7×5) at a 12 Å cutoff;
//! * **BC1** — 206,617 atoms, 378 patches;
//! * **bR** — bacteriorhodopsin, 3,762 atoms, 36 patches.
//!
//! What the parallel engine and load balancer *see* of a deck is: the atom
//! count, the box shape (⇒ patch grid), the spatial density distribution
//! (⇒ per-compute work, load imbalance), and the bonded topology volume.
//! These generators reproduce those observables: a protein-like polymer core
//! and an optional lipid slab create the density heterogeneity, and the box
//! is filled with TIP3P-like water. Everything is deterministic for a given
//! seed. See DESIGN.md §2 for the substitution argument.

// Clippy: indexed loops are kept where they mirror the mathematical
// notation of the kernels and the per-axis geometry code, and chare/builder
// constructors take positional wiring arguments by design.
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]
#![allow(clippy::field_reassign_with_default)]
pub mod builders;
pub mod benchmarks;
pub mod zoo;

pub use benchmarks::{apoa1_like, bc1_like, br_like, BenchmarkSystem};
pub use builders::{SystemBuilder, SystemSpec};
pub use zoo::{ImbalanceBudget, ImbalanceProfile, Scenario};

#[cfg(test)]
mod tests {
    use super::*;
    use mdcore::prelude::*;

    #[test]
    fn small_spec_builds_valid_system() {
        let spec = SystemSpec {
            name: "tiny",
            box_lengths: Vec3::new(24.0, 24.0, 24.0),
            target_atoms: 600,
            protein_chains: 1,
            protein_chain_len: 30,
            lipid_slab: None,
            cutoff: 8.0,
            seed: 1,
        };
        let sys = SystemBuilder::new(spec).build();
        assert_eq!(sys.n_atoms(), 600);
        assert!(sys.topology.validate().is_ok());
        // Water + one polymer: bonds exist.
        assert!(!sys.topology.bonds.is_empty());
        assert!(!sys.topology.angles.is_empty());
        assert!(!sys.topology.dihedrals.is_empty());
    }

    #[test]
    fn builds_are_deterministic() {
        let spec = SystemSpec {
            name: "det",
            box_lengths: Vec3::splat(20.0),
            target_atoms: 300,
            protein_chains: 1,
            protein_chain_len: 20,
            lipid_slab: None,
            cutoff: 8.0,
            seed: 99,
        };
        let a = SystemBuilder::new(spec.clone()).build();
        let b = SystemBuilder::new(spec).build();
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.velocities, b.velocities);
        assert_eq!(a.topology.bonds.len(), b.topology.bonds.len());
    }

    #[test]
    fn all_positions_inside_cell() {
        let sys = SystemBuilder::new(SystemSpec {
            name: "inside",
            box_lengths: Vec3::new(30.0, 25.0, 20.0),
            target_atoms: 900,
            protein_chains: 2,
            protein_chain_len: 25,
            lipid_slab: Some((8.0, 14.0)),
            seed: 3,
            cutoff: 8.0,
        })
        .build();
        for &p in &sys.positions {
            assert!(sys.cell.contains(p), "position {p:?} outside cell");
        }
    }

    #[test]
    fn lipid_slab_raises_local_density() {
        let sys = SystemBuilder::new(SystemSpec {
            name: "slab",
            box_lengths: Vec3::new(40.0, 40.0, 40.0),
            target_atoms: 4000,
            protein_chains: 0,
            protein_chain_len: 0,
            lipid_slab: Some((15.0, 25.0)),
            seed: 7,
            cutoff: 12.0,
        })
        .build();
        // Count atoms in the slab third vs an off-slab third of equal height.
        let in_slab = sys.positions.iter().filter(|p| p.z >= 15.0 && p.z < 25.0).count();
        let off_slab = sys.positions.iter().filter(|p| p.z >= 0.0 && p.z < 10.0).count();
        assert!(
            in_slab as f64 > 1.15 * off_slab as f64,
            "slab {in_slab} vs off-slab {off_slab}: expected denser slab"
        );
    }

    #[test]
    fn benchmark_metadata_matches_paper() {
        // Patch-grid shape checks at the paper's 12 Å cutoff (cheap: do not
        // build the big systems here, just check the specs).
        let a = apoa1_like();
        assert_eq!(a.n_atoms, 92_224);
        assert_eq!(a.patch_grid, [7, 7, 5]);
        let b = bc1_like();
        assert_eq!(b.n_atoms, 206_617);
        assert_eq!(b.patch_grid.iter().product::<usize>(), 378);
        let r = br_like();
        assert_eq!(r.n_atoms, 3_762);
        assert_eq!(r.patch_grid.iter().product::<usize>(), 36);
    }

    #[test]
    fn br_like_builds_fully() {
        let sys = br_like().build();
        assert_eq!(sys.n_atoms(), 3_762);
        assert!(sys.topology.validate().is_ok());
        // Forces must be finite on the generated geometry.
        let mut f = vec![Vec3::ZERO; sys.n_atoms()];
        let e = mdcore::sim::compute_forces(&sys, &mut f);
        assert!(e.potential().is_finite());
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
