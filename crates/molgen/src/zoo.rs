//! # Scenario zoo — inhomogeneous, dynamic stress systems
//!
//! The paper's three benchmark decks are near-uniform solvated boxes, so
//! they barely stress the measurement-based load balancer: per-patch work
//! varies by tens of percent, not factors. The zoo generates the systems
//! the LB strategies were actually *built* for — membrane slabs, vacuum
//! droplets, dense hot-spots, polymer melts, and systems that grow or
//! shrink between measurement phases (the CM-5 weak-scaling and GROMACS
//! heterogeneous-load validation styles, see PAPERS.md).
//!
//! Every scenario is a pure function of `(target_atoms, seed)` and carries
//! a **declared expected-imbalance profile**: the qualitative shape
//! ([`ImbalanceProfile`]), plus a quantitative [`ImbalanceBudget`] — the
//! max/avg per-PE predicted-load ratio the static RCB placement and the
//! measurement-based strategies are allowed to leave behind, as read from
//! the engine's `LbAudit` log. `tests/scenario_stress.rs` enforces the
//! budgets; `namd-rs bench scaling` reports them in `BENCH_scaling.json`.
//!
//! Budgets are calibrated from measurements over the stress operating
//! envelope (2-8 PEs, 1-16k atoms, DES backend in Counted mode, default
//! grainsize knobs) with ~20% headroom over the observed worst case; they
//! are pass/fail bars for regressions, not universal constants. To
//! recalibrate after a generator or strategy change, run
//! `cargo test --test scenario_stress -- --ignored --nocapture probe`.
//! Note that at stress sizes (27-ish patches on 8 PEs) the *static* RCB
//! imbalance is dominated by patch granularity, so even the uniform
//! control scenario declares a static budget near 2.

use crate::benchmarks::BenchmarkSystem;
use crate::builders::SystemSpec;
use mdcore::prelude::*;

/// Cutoff used by every zoo scenario, Å. Smaller than the paper's 12 Å so
/// stress-sized boxes (a few thousand atoms) still decompose into enough
/// patches (side = cutoff + margin = 11.5 Å) to give the balancer choices.
pub const ZOO_CUTOFF: f64 = 8.0;

/// Bulk water atom density the generators target, atoms/Å³.
const WATER_DENSITY: f64 = 0.10;

/// Qualitative shape of a scenario's spatial load distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImbalanceProfile {
    /// Near-uniform density (pure water): the control scenario.
    Uniform,
    /// A dense lipid plane through an elongated box (membrane).
    Slab,
    /// A compact dense core (lipid band + protein globule intersection).
    ClusteredCore,
    /// A dense blob surrounded by vacuum: most patches are empty.
    Sparse,
    /// Many polymer chains — bonded-work heavy, clumpy density.
    BondedMelt,
    /// The system changes size across stages (growing/shrinking).
    Dynamic,
}

impl ImbalanceProfile {
    /// Stable lowercase tag used in JSON output and failure messages.
    pub fn as_str(&self) -> &'static str {
        match self {
            ImbalanceProfile::Uniform => "uniform",
            ImbalanceProfile::Slab => "slab",
            ImbalanceProfile::ClusteredCore => "clustered-core",
            ImbalanceProfile::Sparse => "sparse",
            ImbalanceProfile::BondedMelt => "bonded-melt",
            ImbalanceProfile::Dynamic => "dynamic",
        }
    }
}

/// Declared pass/fail imbalance budget for one scenario. All three numbers
/// are max/avg per-PE predicted-load ratios as recorded in `LbAudit`
/// entries (1.0 = perfectly balanced).
#[derive(Debug, Clone, Copy)]
pub struct ImbalanceBudget {
    /// The initial RCB/static placement may not exceed this.
    pub static_max: f64,
    /// Any measurement-based strategy (greedy, greedy+refine, diffusion)
    /// may not leave more than this behind after its final decision.
    pub lb_max: f64,
    /// The static placement is *expected* to show at least this much
    /// imbalance — the scenario's reason to exist. 1.0 for uniform
    /// scenarios (no expectation).
    pub expected_static_min: f64,
}

/// One zoo scenario: a deterministic `BenchmarkSystem`-compatible spec plus
/// its declared imbalance profile, budget, and growth schedule.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable scenario name (used in JSON, CLI, and failure messages).
    pub name: &'static str,
    pub profile: ImbalanceProfile,
    pub budget: ImbalanceBudget,
    /// Size multipliers the scenario steps through, applied via
    /// [`BenchmarkSystem::scaled`]: `[1.0]` for static scenarios, a ramp
    /// for growing/shrinking systems.
    pub stages: Vec<f64>,
    /// Cell expansion factor applied after building: > 1 embeds the dense
    /// inner box centered in a larger vacuum cell (the droplet scenario).
    vacuum_expand: f64,
    inner: BenchmarkSystem,
}

impl Scenario {
    /// The underlying `BenchmarkSystem` spec (full size, no vacuum
    /// expansion applied — droplet cells grow in [`Scenario::build`]).
    pub fn benchmark(&self) -> &BenchmarkSystem {
        &self.inner
    }

    /// RNG seed the scenario was generated with.
    pub fn seed(&self) -> u64 {
        self.inner.spec().seed
    }

    /// Number of growth stages (1 for static scenarios).
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Atom count of the full-size (fraction 1.0) system.
    pub fn n_atoms(&self) -> usize {
        self.inner.n_atoms
    }

    /// Atom count at an arbitrary size fraction.
    pub fn atoms_at(&self, frac: f64) -> usize {
        if frac == 1.0 { self.inner.n_atoms } else { self.inner.scaled(frac).n_atoms }
    }

    /// Build the full-size system (stage fraction 1.0).
    pub fn build(&self) -> System {
        self.build_scaled(1.0)
    }

    /// Build growth-stage `k` (`0..n_stages`).
    pub fn build_stage(&self, k: usize) -> System {
        self.build_scaled(self.stages[k])
    }

    /// Build the system at an arbitrary size fraction — the weak-scaling
    /// knob: fraction `p` holds atoms-per-PE fixed across `p` PEs.
    pub fn build_scaled(&self, frac: f64) -> System {
        let bench = if frac == 1.0 { self.inner.clone() } else { self.inner.scaled(frac) };
        let sys = bench.build();
        if self.vacuum_expand > 1.0 {
            embed_in_vacuum(sys, self.vacuum_expand)
        } else {
            sys
        }
    }
}

/// Re-home a dense system in the centre of a cell `expand`× larger per
/// axis: everything outside the original box is vacuum. Positions shift,
/// velocities and topology are untouched, so the result is exactly as
/// deterministic as the input.
fn embed_in_vacuum(sys: System, expand: f64) -> System {
    assert!(expand > 1.0);
    let l0 = sys.cell.lengths;
    let l1 = l0 * expand;
    let shift = (l1 - l0) * 0.5;
    let cell = Cell::periodic(Vec3::ZERO, l1);
    let positions = sys.positions.iter().map(|&p| p + shift).collect();
    let velocities = sys.velocities.clone();
    let mut out = System::new(sys.topology, sys.forcefield, cell, positions);
    out.velocities = velocities;
    out
}

/// Cube edge holding `atoms` at `density` atoms/Å³.
fn cube_side(atoms: usize, density: f64) -> f64 {
    (atoms as f64 / density).cbrt()
}

/// Uniform solvated box: pure water, the control scenario — the balancer
/// should find almost nothing to fix.
pub fn solvated_box(atoms: usize, seed: u64) -> Scenario {
    let l = cube_side(atoms, WATER_DENSITY);
    Scenario {
        name: "solvated-box",
        profile: ImbalanceProfile::Uniform,
        budget: ImbalanceBudget { static_max: 2.4, lb_max: 1.30, expected_static_min: 1.0 },
        stages: vec![1.0],
        vacuum_expand: 1.0,
        inner: BenchmarkSystem::from_spec(
            "solvated-box",
            SystemSpec {
                name: "zoo-solvated-box",
                box_lengths: Vec3::splat(l),
                target_atoms: atoms,
                protein_chains: 0,
                protein_chain_len: 0,
                lipid_slab: None,
                cutoff: ZOO_CUTOFF,
                seed,
            },
        ),
    }
}

/// Membrane slab: a dense lipid plane through ~30% of an elongated box.
/// Patches intersecting the slab carry ~1.3× the pair density of bulk
/// water — ApoA-I's hot-spot, isolated.
pub fn membrane_slab(atoms: usize, seed: u64) -> Scenario {
    // Elongate z so the slab is a genuine plane, not most of the box.
    let lx = (atoms as f64 / (WATER_DENSITY * 1.4)).cbrt();
    let lz = 1.4 * lx;
    let (z0, z1) = (0.38 * lz, 0.62 * lz);
    Scenario {
        name: "membrane-slab",
        profile: ImbalanceProfile::Slab,
        budget: ImbalanceBudget { static_max: 2.4, lb_max: 1.30, expected_static_min: 1.0 },
        stages: vec![1.0],
        vacuum_expand: 1.0,
        inner: BenchmarkSystem::from_spec(
            "membrane-slab",
            SystemSpec {
                name: "zoo-membrane-slab",
                box_lengths: Vec3::new(lx, lx, lz),
                target_atoms: atoms,
                protein_chains: 0,
                protein_chain_len: 0,
                lipid_slab: Some((z0, z1)),
                cutoff: ZOO_CUTOFF,
                seed,
            },
        ),
    }
}

/// Polymer melt: many protein-like chains holding ~55% of the atom budget,
/// water filling the rest. Bonded-work heavy and clumpy — the bonded
/// migratability optimization's target.
pub fn polymer_melt(atoms: usize, seed: u64) -> Scenario {
    let chains = (atoms / 500).max(4);
    let chain_len = (atoms / 2) / chains;
    // Slightly dilate the box: half the budget is solute, and the water
    // fill needs lattice headroom outside the chains' clearance shells.
    let l = cube_side(atoms, WATER_DENSITY * 0.85);
    Scenario {
        name: "polymer-melt",
        profile: ImbalanceProfile::BondedMelt,
        budget: ImbalanceBudget { static_max: 2.75, lb_max: 1.30, expected_static_min: 1.0 },
        stages: vec![1.0],
        vacuum_expand: 1.0,
        inner: BenchmarkSystem::from_spec(
            "polymer-melt",
            SystemSpec {
                name: "zoo-polymer-melt",
                box_lengths: Vec3::splat(l),
                target_atoms: atoms,
                protein_chains: chains,
                protein_chain_len: chain_len,
                lipid_slab: None,
                cutoff: ZOO_CUTOFF,
                seed,
            },
        ),
    }
}

/// Vacuum droplet: a dense solvated cube (with a small protein core) in
/// the middle of a cell ~6× its volume. Most patches are empty — the
/// worst case for any placement that assumes uniform density.
pub fn vacuum_droplet(atoms: usize, seed: u64) -> Scenario {
    let l = cube_side(atoms, WATER_DENSITY);
    let core = atoms / 10;
    Scenario {
        name: "vacuum-droplet",
        profile: ImbalanceProfile::Sparse,
        budget: ImbalanceBudget { static_max: 2.7, lb_max: 1.35, expected_static_min: 1.3 },
        stages: vec![1.0],
        vacuum_expand: 1.8,
        inner: BenchmarkSystem::from_spec(
            "vacuum-droplet",
            SystemSpec {
                name: "zoo-vacuum-droplet",
                box_lengths: Vec3::splat(l),
                target_atoms: atoms,
                protein_chains: 1,
                protein_chain_len: core,
                lipid_slab: None,
                cutoff: ZOO_CUTOFF,
                seed,
            },
        ),
    }
}

/// Density hot-spot: a thin, very dense lipid band with a protein globule
/// threading it, centred in a cubic water box. The band∩globule region is
/// a compact clump of work.
pub fn density_hotspot(atoms: usize, seed: u64) -> Scenario {
    let l = cube_side(atoms, WATER_DENSITY);
    // Band thickness scales with the box (20% of the height) so small
    // stress sizes keep a sane lipid bead spacing. The protein core is kept
    // small: at the builder's 0.055 atoms/Å³ globule density a large core
    // would *dilute* the band (water is excluded from its clearance shell)
    // instead of concentrating it.
    let (z0, z1) = (0.4 * l, 0.6 * l);
    let core = atoms / 30;
    Scenario {
        name: "density-hotspot",
        profile: ImbalanceProfile::ClusteredCore,
        budget: ImbalanceBudget { static_max: 2.5, lb_max: 1.35, expected_static_min: 1.25 },
        stages: vec![1.0],
        vacuum_expand: 1.0,
        inner: BenchmarkSystem::from_spec(
            "density-hotspot",
            SystemSpec {
                name: "zoo-density-hotspot",
                box_lengths: Vec3::splat(l),
                target_atoms: atoms,
                protein_chains: 1,
                protein_chain_len: core,
                lipid_slab: Some((z0, z1)),
                cutoff: ZOO_CUTOFF,
                seed,
            },
        ),
    }
}

/// Growing system: a solvated box with a small solute that steps through
/// 55% → 75% → 100% of its final size, one measurement window per stage —
/// the load balancer must keep up with a system that changes under it.
pub fn growing_system(atoms: usize, seed: u64) -> Scenario {
    let mut s = dynamic_base(atoms, seed, "growing-system", "zoo-growing-system");
    s.stages = vec![0.55, 0.75, 1.0];
    s
}

/// Shrinking system: the growing scenario's ramp, reversed.
pub fn shrinking_system(atoms: usize, seed: u64) -> Scenario {
    let mut s = dynamic_base(atoms, seed, "shrinking-system", "zoo-shrinking-system");
    s.stages = vec![1.0, 0.75, 0.55];
    s
}

fn dynamic_base(
    atoms: usize,
    seed: u64,
    name: &'static str,
    spec_name: &'static str,
) -> Scenario {
    let l = cube_side(atoms, WATER_DENSITY);
    Scenario {
        name,
        profile: ImbalanceProfile::Dynamic,
        budget: ImbalanceBudget { static_max: 2.35, lb_max: 1.45, expected_static_min: 1.0 },
        stages: vec![1.0],
        vacuum_expand: 1.0,
        inner: BenchmarkSystem::from_spec(
            name,
            SystemSpec {
                name: spec_name,
                box_lengths: Vec3::splat(l),
                target_atoms: atoms,
                protein_chains: 1,
                protein_chain_len: atoms / 20,
                lipid_slab: None,
                cutoff: ZOO_CUTOFF,
                seed,
            },
        ),
    }
}

/// Every zoo scenario at the given size and seed, in stable order —
/// roughly most to least load-stressing, so a case-limited run
/// (`SCENARIO_STRESS_CASES`) keeps the scenarios with declared static
/// imbalance and drops the uniform control last.
pub fn all(atoms: usize, seed: u64) -> Vec<Scenario> {
    vec![
        density_hotspot(atoms, seed),
        vacuum_droplet(atoms, seed),
        membrane_slab(atoms, seed),
        polymer_melt(atoms, seed),
        growing_system(atoms, seed),
        shrinking_system(atoms, seed),
        solvated_box(atoms, seed),
    ]
}

/// Stable scenario names, matching [`all`]'s order.
pub fn names() -> Vec<&'static str> {
    all(1000, 0).into_iter().map(|s| s.name).collect()
}

/// Look a scenario up by name.
pub fn by_name(name: &str, atoms: usize, seed: u64) -> Option<Scenario> {
    all(atoms, seed).into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_ATOMS: usize = 900;

    /// Bitwise system equality: positions, velocities, and topology sizes.
    fn same_system(a: &System, b: &System) -> bool {
        a.positions == b.positions
            && a.velocities == b.velocities
            && a.topology.atoms.len() == b.topology.atoms.len()
            && a.topology.bonds.len() == b.topology.bonds.len()
            && a.cell.lengths == b.cell.lengths
    }

    #[test]
    fn every_generator_is_deterministic() {
        for sc in all(TEST_ATOMS, 11) {
            let x = sc.build();
            let y = by_name(sc.name, TEST_ATOMS, 11).unwrap().build();
            assert!(same_system(&x, &y), "{}: same seed must be bit-identical", sc.name);
        }
    }

    #[test]
    fn different_seeds_differ() {
        for sc in all(TEST_ATOMS, 11) {
            let other = by_name(sc.name, TEST_ATOMS, 12).unwrap();
            let x = sc.build();
            let y = other.build();
            assert_eq!(x.n_atoms(), y.n_atoms(), "{}", sc.name);
            assert_ne!(x.positions, y.positions, "{}: seeds 11/12 identical", sc.name);
        }
    }

    #[test]
    fn every_stage_builds_to_spec() {
        for sc in all(TEST_ATOMS, 3) {
            for k in 0..sc.n_stages() {
                let sys = sc.build_stage(k);
                assert!(sys.topology.validate().is_ok(), "{} stage {k}", sc.name);
                assert_eq!(sys.n_atoms(), sc.atoms_at(sc.stages[k]), "{} stage {k}", sc.name);
            }
        }
    }

    #[test]
    fn droplet_cell_is_mostly_vacuum() {
        let sc = vacuum_droplet(TEST_ATOMS, 5);
        let sys = sc.build();
        let density = sys.n_atoms() as f64 / sys.cell.volume();
        // 1.8³ ≈ 5.8× the inner volume: mean density far below liquid.
        assert!(density < 0.4 * 0.10, "droplet mean density {density}");
        // All atoms sit in the central core, none near the cell faces.
        let l = sys.cell.lengths;
        for &p in &sys.positions {
            assert!(p.x > 0.15 * l.x && p.x < 0.85 * l.x, "atom at {p:?} outside core");
        }
    }

    #[test]
    fn hotspot_band_is_denser_than_bulk() {
        let sc = density_hotspot(4000, 9);
        let sys = sc.build();
        let l = sys.cell.lengths.z;
        let band =
            sys.positions.iter().filter(|p| p.z >= 0.4 * l && p.z < 0.6 * l).count();
        let bulk = sys.positions.iter().filter(|p| p.z < 0.2 * l).count();
        assert!(
            band as f64 > 1.15 * bulk as f64,
            "hot band {band} vs bulk slice {bulk}: expected denser band"
        );
    }

    #[test]
    fn names_are_unique_and_lookup_works() {
        let names = names();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert!(by_name("vacuum-droplet", 600, 1).is_some());
        assert!(by_name("no-such-scenario", 600, 1).is_none());
    }

    #[test]
    fn growth_stages_actually_grow() {
        let sc = growing_system(1500, 4);
        let sizes: Vec<usize> = sc.stages.iter().map(|&f| sc.atoms_at(f)).collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "{sizes:?}");
        let sh = shrinking_system(1500, 4);
        let sizes: Vec<usize> = sh.stages.iter().map(|&f| sh.atoms_at(f)).collect();
        assert!(sizes.windows(2).all(|w| w[0] > w[1]), "{sizes:?}");
    }
}
