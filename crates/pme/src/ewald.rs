//! Classical Ewald summation: the exact reference for periodic
//! electrostatics.
//!
//! The Coulomb energy of a neutral periodic system is split with a Gaussian
//! screening parameter β into
//!
//! * a short-range **real-space** sum `Σ q_i q_j erfc(β r)/r` evaluated
//!   inside a cutoff (this is the "cutoff atom-based component" the paper
//!   says its results apply to directly),
//! * a smooth **reciprocal-space** sum over k-vectors (the "grid-based
//!   component" whose parallelization the paper defers to [14, 16] — the
//!   `mesh` module provides the PME version),
//! * the **self-energy** correction `-β/√π Σ q_i²`, and
//! * **exclusion corrections** removing the reciprocal-space interaction of
//!   bonded (1-2/1-3) pairs.
//!
//! This module computes the reciprocal part by direct k-summation — O(N·K³),
//! exact, the gold standard the FFT-based mesh solver is validated against.

use crate::erf::{erfc, TWO_OVER_SQRT_PI};
use mdcore::forcefield::units;
use mdcore::prelude::*;

/// Ewald parameters.
#[derive(Debug, Clone, Copy)]
pub struct EwaldParams {
    /// Gaussian screening parameter β, Å⁻¹.
    pub beta: f64,
    /// Real-space cutoff, Å.
    pub r_cut: f64,
    /// Reciprocal-space cutoff: include k with |n| ≤ kmax per axis.
    pub kmax: usize,
}

impl EwaldParams {
    /// Standard accuracy heuristic: β chosen so erfc(β·r_cut)/r_cut ≤ tol,
    /// kmax so the Gaussian factor at the k-cutoff ≤ tol.
    pub fn auto(cell: &Cell, r_cut: f64, tol: f64) -> EwaldParams {
        assert!(tol > 0.0 && tol < 1.0);
        // Solve erfc(x) = tol approximately: x ≈ sqrt(ln(1/tol)).
        let x = (1.0 / tol).ln().sqrt();
        let beta = x / r_cut;
        let lmin = cell.lengths.x.min(cell.lengths.y).min(cell.lengths.z);
        // exp(-(πn/(βL))²)·stuff ≤ tol ⇒ n ≥ βLx/π.
        let kmax = ((beta * lmin * x) / std::f64::consts::PI).ceil() as usize;
        EwaldParams { beta, r_cut, kmax: kmax.max(1) }
    }
}

/// Energy breakdown of an Ewald evaluation, kcal/mol.
#[derive(Debug, Clone, Copy, Default)]
pub struct EwaldEnergy {
    pub real: f64,
    pub reciprocal: f64,
    pub self_energy: f64,
    pub exclusion: f64,
}

impl EwaldEnergy {
    /// Total electrostatic energy.
    pub fn total(&self) -> f64 {
        self.real + self.reciprocal + self.self_energy + self.exclusion
    }
}

/// Real-space Ewald part over all pairs within the cutoff, honouring
/// exclusions (fully excluded pairs contribute nothing here; their
/// reciprocal-space image is removed by [`exclusion_correction`]).
/// Accumulates forces and returns the energy.
pub fn real_space(
    cell: &Cell,
    pos: &[Vec3],
    q: &[f64],
    ex: &Exclusions,
    params: &EwaldParams,
    forces: &mut [Vec3],
) -> f64 {
    let cl = CellList::build(cell, pos, params.r_cut);
    let pairs = cl.neighbor_pairs(pos, params.r_cut);
    let beta = params.beta;
    let mut energy = 0.0;
    for (i, j) in pairs {
        let (i, j) = (i as usize, j as usize);
        if ex.kind(i as u32, j as u32) == ExclusionKind::Full {
            continue;
        }
        let d = cell.min_image(pos[i], pos[j]);
        let r2 = d.norm2();
        let r = r2.sqrt();
        let qq = units::COULOMB * q[i] * q[j];
        let e = qq * erfc(beta * r) / r;
        energy += e;
        // F_i = qq [ erfc(βr)/r² + 2β/√π e^{-β²r²}/r ] r̂
        let fmag = qq * (erfc(beta * r) / r2 + beta * TWO_OVER_SQRT_PI * (-beta * beta * r2).exp() / r);
        let f = d * (fmag / r);
        forces[i] += f;
        forces[j] -= f;
    }
    energy
}

/// Direct (non-mesh) reciprocal-space sum. Returns the energy and
/// accumulates forces. O(N·(2kmax+1)³) — reference quality, test sizes only.
pub fn reciprocal_direct(
    cell: &Cell,
    pos: &[Vec3],
    q: &[f64],
    params: &EwaldParams,
    forces: &mut [Vec3],
) -> f64 {
    assert!(cell.periodic.iter().all(|&p| p), "Ewald requires full periodicity");
    let v = cell.volume();
    let beta2 = params.beta * params.beta;
    let kmax = params.kmax as isize;
    let two_pi = 2.0 * std::f64::consts::PI;
    let kx0 = two_pi / cell.lengths.x;
    let ky0 = two_pi / cell.lengths.y;
    let kz0 = two_pi / cell.lengths.z;
    let n = pos.len();

    let mut energy = 0.0;
    for nx in -kmax..=kmax {
        for ny in -kmax..=kmax {
            for nz in -kmax..=kmax {
                if (nx, ny, nz) == (0, 0, 0) {
                    continue;
                }
                let k = Vec3::new(nx as f64 * kx0, ny as f64 * ky0, nz as f64 * kz0);
                let k2 = k.norm2();
                let g = 4.0 * std::f64::consts::PI * (-k2 / (4.0 * beta2)).exp() / k2;
                // Structure factor S(k) = Σ q e^{ik·r}.
                let mut s_re = 0.0;
                let mut s_im = 0.0;
                for i in 0..n {
                    let phase = k.dot(pos[i]);
                    s_re += q[i] * phase.cos();
                    s_im += q[i] * phase.sin();
                }
                let s2 = s_re * s_re + s_im * s_im;
                energy += g * s2;
                // F_i = (C/V)·g·q_i·k·[sin(k·r_i)·S_re − cos(k·r_i)·S_im]
                for i in 0..n {
                    let phase = k.dot(pos[i]);
                    let coeff = units::COULOMB / v
                        * g
                        * q[i]
                        * (phase.sin() * s_re - phase.cos() * s_im);
                    forces[i] += k * coeff;
                }
            }
        }
    }
    units::COULOMB / (2.0 * v) * energy
}

/// Self-energy correction: `−C·β/√π·Σ q_i²`.
pub fn self_energy(q: &[f64], params: &EwaldParams) -> f64 {
    let sum_q2: f64 = q.iter().map(|&x| x * x).sum();
    -units::COULOMB * params.beta / std::f64::consts::PI.sqrt() * sum_q2
}

/// Exclusion correction: fully excluded pairs are present in the reciprocal
/// sum (which knows nothing of exclusions); remove their screened
/// interaction `C q_i q_j erf(β r)/r` and its force.
pub fn exclusion_correction(
    cell: &Cell,
    pos: &[Vec3],
    q: &[f64],
    ex: &Exclusions,
    params: &EwaldParams,
    forces: &mut [Vec3],
) -> f64 {
    let beta = params.beta;
    let mut energy = 0.0;
    for i in 0..pos.len() {
        for &j in ex.full_of(i as u32) {
            let j = j as usize;
            if j <= i {
                continue; // each unordered pair once
            }
            let d = cell.min_image(pos[i], pos[j]);
            let r2 = d.norm2();
            let r = r2.sqrt();
            if r < 1e-9 {
                continue;
            }
            let qq = units::COULOMB * q[i] * q[j];
            let erf_br = 1.0 - erfc(beta * r);
            energy -= qq * erf_br / r;
            // E_corr = −qq·erf(βr)/r ⇒ F_i = −dE/dr·r̂ = +qq·f'(r)·r̂ with
            // f'(r) = 2β/√π·e^{−β²r²}/r − erf(βr)/r².
            let fmag =
                qq * (beta * TWO_OVER_SQRT_PI * (-beta * beta * r2).exp() / r - erf_br / r2);
            let f = d * (fmag / r);
            forces[i] += f;
            forces[j] -= f;
        }
    }
    energy
}

/// Full direct Ewald evaluation: energy breakdown + forces (accumulated
/// into `forces`).
pub fn ewald_direct(
    cell: &Cell,
    pos: &[Vec3],
    q: &[f64],
    ex: &Exclusions,
    params: &EwaldParams,
    forces: &mut [Vec3],
) -> EwaldEnergy {
    assert_eq!(pos.len(), q.len());
    assert_eq!(pos.len(), forces.len());
    EwaldEnergy {
        real: real_space(cell, pos, q, ex, params, forces),
        reciprocal: reciprocal_direct(cell, pos, q, params, forces),
        self_energy: self_energy(q, params),
        exclusion: exclusion_correction(cell, pos, q, ex, params, forces),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A rock-salt (NaCl) lattice of 2×2×2 unit cells: the Madelung test.
    fn nacl(a: f64) -> (Cell, Vec<Vec3>, Vec<f64>) {
        let n_cells = 2;
        let l = a * n_cells as f64;
        let cell = Cell::cube(l);
        let mut pos = Vec::new();
        let mut q = Vec::new();
        let half = a / 2.0;
        for ix in 0..n_cells * 2 {
            for iy in 0..n_cells * 2 {
                for iz in 0..n_cells * 2 {
                    pos.push(Vec3::new(
                        ix as f64 * half,
                        iy as f64 * half,
                        iz as f64 * half,
                    ));
                    q.push(if (ix + iy + iz) % 2 == 0 { 1.0 } else { -1.0 });
                }
            }
        }
        (cell, pos, q)
    }

    #[test]
    fn madelung_constant_of_nacl() {
        let a = 5.64; // NaCl lattice constant, Å
        let (cell, pos, q) = nacl(a);
        let ex = Exclusions::none(pos.len());
        let params = EwaldParams::auto(&cell, 5.6, 1e-8);
        let mut f = vec![Vec3::ZERO; pos.len()];
        let e = ewald_direct(&cell, &pos, &q, &ex, &params, &mut f);
        // Potential at an ion site is −M·q/r_nn (M = 1.747565, r_nn = a/2);
        // the energy per ion is half of q·V (each pair shared by two ions).
        let per_ion = e.total() / pos.len() as f64;
        let expect = -1.747_565 * units::COULOMB / (a / 2.0) / 2.0;
        assert!(
            (per_ion / expect - 1.0).abs() < 1e-4,
            "Madelung: {per_ion} vs {expect}"
        );
        // Perfect lattice: zero force on every ion.
        for (i, fi) in f.iter().enumerate() {
            assert!(fi.norm() < 1e-6, "ion {i} force {fi:?}");
        }
    }

    #[test]
    fn total_energy_independent_of_beta() {
        // The β-split is an identity: different β, same total.
        let (cell, pos, q) = nacl(6.0);
        let ex = Exclusions::none(pos.len());
        // β must be large enough that erfc(β·r_cut) is negligible at the
        // half-box real-space cutoff, and kmax large enough for the bigger β.
        let mut totals = Vec::new();
        for beta in [0.55, 0.72] {
            let params = EwaldParams { beta, r_cut: 5.9, kmax: 14 };
            let mut f = vec![Vec3::ZERO; pos.len()];
            let e = ewald_direct(&cell, &pos, &q, &ex, &params, &mut f);
            totals.push(e.total());
        }
        assert!(
            (totals[0] / totals[1] - 1.0).abs() < 5e-4,
            "β-dependence: {totals:?}"
        );
    }

    #[test]
    fn forces_match_finite_differences() {
        // A small random-ish charged system (net neutral).
        let cell = Cell::cube(10.0);
        let pos = vec![
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(4.5, 6.0, 2.0),
            Vec3::new(7.0, 1.5, 8.0),
            Vec3::new(3.0, 8.0, 6.5),
        ];
        let q = vec![0.5, -0.8, 0.6, -0.3];
        let ex = Exclusions::none(4);
        let params = EwaldParams { beta: 0.5, r_cut: 4.9, kmax: 8 };

        let energy_at = |pos: &[Vec3]| {
            let mut f = vec![Vec3::ZERO; 4];
            ewald_direct(&cell, pos, &q, &ex, &params, &mut f).total()
        };
        let mut f = vec![Vec3::ZERO; 4];
        ewald_direct(&cell, &pos, &q, &ex, &params, &mut f);

        let h = 1e-5;
        for atom in 0..4 {
            for axis in 0..3 {
                let mut p_plus = pos.clone();
                *p_plus[atom].axis_mut(axis) += h;
                let mut p_minus = pos.clone();
                *p_minus[atom].axis_mut(axis) -= h;
                let fd = -(energy_at(&p_plus) - energy_at(&p_minus)) / (2.0 * h);
                let an = f[atom].axis(axis);
                assert!(
                    (fd - an).abs() < 1e-4 * (1.0 + an.abs()),
                    "atom {atom} axis {axis}: fd {fd} vs analytic {an}"
                );
            }
        }
        // Momentum conservation.
        let net: Vec3 = f.iter().copied().sum();
        assert!(net.norm() < 1e-8, "net force {net:?}");
    }

    #[test]
    fn excluded_pair_is_fully_removed() {
        // Two bonded opposite charges: with the exclusion correction the
        // total must equal the energy of the same system with the pair's
        // direct interaction absent — check consistency across β (the
        // correction must cancel the reciprocal image exactly, leaving a
        // β-independent total).
        let cell = Cell::cube(12.0);
        let pos = vec![Vec3::new(5.0, 5.0, 5.0), Vec3::new(6.2, 5.0, 5.0)];
        let q = vec![0.4, -0.4];
        let mut topo = Topology::default();
        topo.atoms = vec![Atom { mass: 1.0, charge: 0.4, lj_type: 0 }; 2];
        topo.bonds.push(Bond { a: 0, b: 1, k: 1.0, r0: 1.2 });
        let ex = Exclusions::from_topology(&topo);
        let mut totals = Vec::new();
        for beta in [0.4, 0.55] {
            let mut f = vec![Vec3::ZERO; 2];
            let params = EwaldParams { beta, r_cut: 5.9, kmax: 12 };
            let e = ewald_direct(&cell, &pos, &q, &ex, &params, &mut f);
            totals.push(e.total());
        }
        assert!(
            (totals[0] - totals[1]).abs() < 1e-4 * totals[0].abs().max(1.0),
            "exclusion correction leaks β-dependence: {totals:?}"
        );
    }

    #[test]
    fn exclusion_correction_force_matches_fd() {
        // Three charges, pair (0,1) excluded — exercises the correction's
        // force path, which the no-exclusion FD test cannot reach.
        let cell = Cell::cube(10.0);
        let pos = vec![
            Vec3::new(4.0, 5.0, 5.0),
            Vec3::new(5.1, 5.0, 5.0),
            Vec3::new(7.5, 6.0, 5.0),
        ];
        let q = vec![0.5, -0.4, 0.3];
        let mut topo = Topology::default();
        topo.atoms = vec![Atom { mass: 1.0, charge: 0.0, lj_type: 0 }; 3];
        topo.bonds.push(Bond { a: 0, b: 1, k: 1.0, r0: 1.1 });
        let ex = Exclusions::from_topology(&topo);
        let params = EwaldParams { beta: 0.6, r_cut: 4.9, kmax: 10 };

        let energy_at = |pos: &[Vec3]| {
            let mut f = vec![Vec3::ZERO; 3];
            ewald_direct(&cell, pos, &q, &ex, &params, &mut f).total()
        };
        let mut f = vec![Vec3::ZERO; 3];
        ewald_direct(&cell, &pos, &q, &ex, &params, &mut f);
        let h = 1e-5;
        for atom in 0..3 {
            for axis in 0..3 {
                let mut p = pos.clone();
                *p[atom].axis_mut(axis) += h;
                let ep = energy_at(&p);
                *p[atom].axis_mut(axis) -= 2.0 * h;
                let em = energy_at(&p);
                let fd = -(ep - em) / (2.0 * h);
                let an = f[atom].axis(axis);
                assert!(
                    (fd - an).abs() < 1e-4 * (1.0 + an.abs()),
                    "atom {atom} axis {axis}: fd {fd} vs {an}"
                );
            }
        }
    }

    #[test]
    fn auto_params_are_sane() {
        let cell = Cell::cube(40.0);
        let p = EwaldParams::auto(&cell, 10.0, 1e-7);
        assert!(p.beta > 0.2 && p.beta < 1.0, "beta {}", p.beta);
        assert!(p.kmax >= 4 && p.kmax < 64, "kmax {}", p.kmax);
        // erfc at the cutoff is at or below the tolerance scale.
        assert!(erfc(p.beta * p.r_cut) < 1e-6);
    }

    #[test]
    fn neutral_uniform_system_has_small_energy() {
        // +q and −q arranged symmetrically: reciprocal + self + real must
        // largely cancel the bare Coulomb attraction handled in real space.
        let cell = Cell::cube(20.0);
        let pos = vec![Vec3::new(5.0, 10.0, 10.0), Vec3::new(15.0, 10.0, 10.0)];
        let q = vec![1.0, -1.0];
        let ex = Exclusions::none(2);
        let params = EwaldParams::auto(&cell, 9.0, 1e-7);
        let mut f = vec![Vec3::ZERO; 2];
        let e = ewald_direct(&cell, &pos, &q, &ex, &params, &mut f);
        // Energy of ±1 e at 10 Å with images: near −C/10·(Wigner-ish) —
        // just require it be negative (attractive) and of sane magnitude.
        assert!(e.total() < 0.0 && e.total() > -2.0 * units::COULOMB / 10.0 * 2.0);
    }
}
