//! A from-scratch complex FFT (iterative radix-2 Cooley-Tukey) and a 3-D
//! transform built on it.
//!
//! The particle-mesh Ewald solver needs forward/inverse 3-D FFTs over the
//! charge mesh. Mesh dimensions are restricted to powers of two — the PME
//! grid chooser rounds up, which only sharpens the interpolation.

/// A complex number; deliberately minimal (no external dependency).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// e^{iθ}.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    #[inline]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    #[inline]
    pub fn norm2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex { re: self.re * s, im: self.im * s }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex { re: self.re + o.re, im: self.im + o.im }
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex { re: self.re - o.re, im: self.im - o.im }
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

/// In-place radix-2 decimation-in-time FFT. `data.len()` must be a power of
/// two. `inverse` applies the conjugate transform *without* the 1/N
/// normalization (callers normalize once, where convenient).
pub fn fft_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for j in 0..len / 2 {
                let u = data[i + j];
                let v = data[i + j + len / 2] * w;
                data[i + j] = u + v;
                data[i + j + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// A 3-D complex grid with FFT support, stored row-major as
/// `x + nx*(y + ny*z)`.
#[derive(Debug, Clone)]
pub struct Grid3 {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    pub data: Vec<Complex>,
}

impl Grid3 {
    /// Zeroed grid; all dimensions must be powers of two.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(
            nx.is_power_of_two() && ny.is_power_of_two() && nz.is_power_of_two(),
            "grid dims must be powers of two: {nx}x{ny}x{nz}"
        );
        Grid3 { nx, ny, nz, data: vec![Complex::ZERO; nx * ny * nz] }
    }

    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        x + self.nx * (y + self.ny * z)
    }

    /// Zero all cells.
    pub fn clear(&mut self) {
        self.data.fill(Complex::ZERO);
    }

    /// 3-D FFT via three passes of 1-D transforms. `inverse` is
    /// unnormalized; [`Grid3::normalize_inverse`] divides by N.
    pub fn fft(&mut self, inverse: bool) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        // X lines are contiguous.
        for z in 0..nz {
            for y in 0..ny {
                let start = self.idx(0, y, z);
                fft_in_place(&mut self.data[start..start + nx], inverse);
            }
        }
        // Y lines: gather/scatter through a scratch buffer.
        let mut line = vec![Complex::ZERO; ny];
        for z in 0..nz {
            for x in 0..nx {
                for (y, l) in line.iter_mut().enumerate() {
                    *l = self.data[self.idx(x, y, z)];
                }
                fft_in_place(&mut line, inverse);
                for (y, l) in line.iter().enumerate() {
                    let i = self.idx(x, y, z);
                    self.data[i] = *l;
                }
            }
        }
        // Z lines.
        let mut line = vec![Complex::ZERO; nz];
        for y in 0..ny {
            for x in 0..nx {
                for (z, l) in line.iter_mut().enumerate() {
                    *l = self.data[self.idx(x, y, z)];
                }
                fft_in_place(&mut line, inverse);
                for (z, l) in line.iter().enumerate() {
                    let i = self.idx(x, y, z);
                    self.data[i] = *l;
                }
            }
        }
    }

    /// Apply the 1/N factor after an inverse FFT.
    pub fn normalize_inverse(&mut self) {
        let s = 1.0 / (self.nx * self.ny * self.nz) as f64;
        for c in &mut self.data {
            *c = c.scale(s);
        }
    }
}

/// Next power of two ≥ `n`.
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut d = vec![Complex::ZERO; 8];
        d[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut d, false);
        for c in &d {
            assert!(approx(c.re, 1.0, 1e-12) && approx(c.im, 0.0, 1e-12));
        }
    }

    #[test]
    fn fft_of_single_mode_is_a_peak() {
        // x_j = e^{2πi·3j/16} → X_k = 16·δ(k-3) under the e^{-} convention.
        let n = 16;
        let mut d: Vec<Complex> = (0..n)
            .map(|j| Complex::cis(2.0 * std::f64::consts::PI * 3.0 * j as f64 / n as f64))
            .collect();
        fft_in_place(&mut d, false);
        for (k, c) in d.iter().enumerate() {
            let expect = if k == 3 { n as f64 } else { 0.0 };
            assert!(
                approx(c.re, expect, 1e-9) && approx(c.im, 0.0, 1e-9),
                "bin {k}: {c:?}"
            );
        }
    }

    #[test]
    fn roundtrip_recovers_signal() {
        let n = 64;
        let orig: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
            .collect();
        let mut d = orig.clone();
        fft_in_place(&mut d, false);
        fft_in_place(&mut d, true);
        for (a, b) in d.iter().zip(&orig) {
            assert!(approx(a.re / n as f64, b.re, 1e-10));
            assert!(approx(a.im / n as f64, b.im, 1e-10));
        }
    }

    #[test]
    fn parseval_holds() {
        let n = 32;
        let d: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 2.0).cos() * 0.5))
            .collect();
        let time_energy: f64 = d.iter().map(|c| c.norm2()).sum();
        let mut f = d.clone();
        fft_in_place(&mut f, false);
        let freq_energy: f64 = f.iter().map(|c| c.norm2()).sum::<f64>() / n as f64;
        assert!(approx(time_energy, freq_energy, 1e-9));
    }

    #[test]
    fn matches_naive_dft() {
        let n = 16;
        let d: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 1.3).cos(), (i as f64 * 0.7).sin()))
            .collect();
        let mut fast = d.clone();
        fft_in_place(&mut fast, false);
        for k in 0..n {
            let mut sum = Complex::ZERO;
            for (j, x) in d.iter().enumerate() {
                sum = sum
                    + *x * Complex::cis(
                        -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64,
                    );
            }
            assert!(approx(fast[k].re, sum.re, 1e-9), "bin {k}");
            assert!(approx(fast[k].im, sum.im, 1e-9), "bin {k}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        let mut d = vec![Complex::ZERO; 12];
        fft_in_place(&mut d, false);
    }

    #[test]
    fn grid3_roundtrip() {
        let mut g = Grid3::new(4, 8, 4);
        for (i, c) in g.data.iter_mut().enumerate() {
            *c = Complex::new((i as f64 * 0.11).sin(), 0.0);
        }
        let orig = g.data.clone();
        g.fft(false);
        g.fft(true);
        g.normalize_inverse();
        for (a, b) in g.data.iter().zip(&orig) {
            assert!(approx(a.re, b.re, 1e-10) && approx(a.im, b.im, 1e-10));
        }
    }

    #[test]
    fn grid3_impulse_flat_spectrum() {
        let mut g = Grid3::new(4, 4, 4);
        let i0 = g.idx(0, 0, 0);
        g.data[i0] = Complex::new(1.0, 0.0);
        g.fft(false);
        for c in &g.data {
            assert!(approx(c.re, 1.0, 1e-12));
        }
    }

    #[test]
    fn next_pow2_rounds_up() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(17), 32);
        assert_eq!(next_pow2(64), 64);
    }
}
