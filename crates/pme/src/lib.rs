//! # pme — full electrostatics: Ewald summation and particle-mesh Ewald
//!
//! The paper's benchmarks are cutoff simulations, but its introduction is
//! explicit that full long-range electrostatics "may be calculated via an
//! efficient combination of global grid-based and cutoff atom-based
//! components", with the grid part's parallelization the subject of ongoing
//! work [14, 16]. This crate builds that substrate from scratch:
//!
//! * [`ewald`] — classical Ewald summation: screened real-space sum, exact
//!   direct k-space reciprocal sum, self-energy and exclusion corrections.
//!   Validated against the Madelung constant of rock salt.
//! * [`fft`] — an iterative radix-2 complex FFT and 3-D transforms (no
//!   external FFT dependency).
//! * [`mesh`] — smooth particle-mesh Ewald (Essmann et al. 1995): B-spline
//!   charge spreading, influence-function convolution via FFT, analytic
//!   force gathering. Validated against the direct k-space sum.
//! * [`md`] — a full-electrostatics force provider combining mdcore's
//!   Ewald-mode real-space kernels with PME, and an r-RESPA multiple-
//!   timestep integrator (bonded every step, non-bonded every k steps).
//!
//! The DES engine in `namd-core` models the *parallel cost* of this
//! pipeline (slab-decomposed FFTs, transpose all-to-all) via
//! `SimConfig::pme`; the physics here backs that model and runs for real in
//! the sequential and multicore paths.

// Clippy: indexed loops are kept where they mirror the mathematical
// notation of the kernels and the per-axis geometry code, and chare/builder
// constructors take positional wiring arguments by design.
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]
#![allow(clippy::field_reassign_with_default)]
pub use mdcore::erf;
pub mod ewald;
pub mod fft;
pub mod md;
pub mod mesh;
