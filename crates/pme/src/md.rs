//! Full-electrostatics molecular dynamics: cutoff LJ + Ewald real space
//! (via mdcore's kernels in Ewald mode) + PME reciprocal space, with an
//! optional r-RESPA multiple-timestep integrator.
//!
//! The paper notes that "even when full, long-range electrostatic
//! interactions are included in a simulation, these forces may be calculated
//! via an efficient combination of global grid-based and cutoff atom-based
//! components", and that the grid part's cost shrinks further "when combined
//! with multiple timestepping methods". This module is that combination.

use crate::ewald::{exclusion_correction, self_energy, EwaldParams};
use crate::mesh::{Pme, PmeParams};
use mdcore::bonded::compute_bonded;
use mdcore::forcefield::units;
use mdcore::prelude::*;

/// Energy breakdown of a full-electrostatics evaluation, kcal/mol.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullEnergy {
    pub bonded: f64,
    pub lj: f64,
    /// Real-space Ewald electrostatics (erfc-screened, inside the cutoff).
    pub elec_real: f64,
    /// Reciprocal-space (PME) electrostatics.
    pub elec_recip: f64,
    /// Self + exclusion corrections.
    pub elec_corr: f64,
    pub kinetic: f64,
}

impl FullEnergy {
    /// Total electrostatic energy.
    pub fn electrostatic(&self) -> f64 {
        self.elec_real + self.elec_recip + self.elec_corr
    }

    /// Total potential energy.
    pub fn potential(&self) -> f64 {
        self.bonded + self.lj + self.electrostatic()
    }

    /// Total energy.
    pub fn total(&self) -> f64 {
        self.potential() + self.kinetic
    }
}

/// A full-electrostatics force provider bound to one system geometry.
pub struct FullElectrostatics {
    pme: Pme,
    ewald: EwaldParams,
    charges: Vec<f64>,
}

impl FullElectrostatics {
    /// Set up PME for a system whose force field is in Ewald mode
    /// (`ForceField::with_ewald`). `mesh_spacing` is the maximum PME mesh
    /// spacing in Å (≈1.0-1.2 is typical).
    pub fn new(system: &System, mesh_spacing: f64) -> Self {
        let beta = system
            .forcefield
            .ewald_beta
            .expect("force field must be in Ewald mode (ForceField::with_ewald)");
        let params = PmeParams::for_cell(&system.cell, beta, mesh_spacing);
        FullElectrostatics {
            pme: Pme::new(&system.cell, params),
            ewald: EwaldParams { beta, r_cut: system.forcefield.cutoff, kmax: 0 },
            charges: system.charges(),
        }
    }

    /// The PME mesh in use.
    pub fn mesh(&self) -> [usize; 3] {
        self.pme.params.mesh
    }

    /// Short-range forces only (bonded + LJ + Ewald real space): the cheap
    /// part evaluated every step under multiple timestepping. Overwrites
    /// `forces`.
    pub fn short_range(&self, system: &System, forces: &mut [Vec3]) -> FullEnergy {
        let e = mdcore::sim::compute_forces(system, forces);
        FullEnergy {
            bonded: e.bonded.total(),
            lj: e.nonbonded.e_lj,
            elec_real: e.nonbonded.e_elec,
            ..Default::default()
        }
    }

    /// Long-range (reciprocal + corrections) forces, *accumulated* into
    /// `forces`.
    pub fn long_range(&mut self, system: &System, forces: &mut [Vec3]) -> FullEnergy {
        let recip = self
            .pme
            .reciprocal(&system.positions, &self.charges, forces)
            .reciprocal;
        let corr_ex = exclusion_correction(
            &system.cell,
            &system.positions,
            &self.charges,
            &system.exclusions,
            &self.ewald,
            forces,
        );
        let corr_self = self_energy(&self.charges, &self.ewald);
        FullEnergy {
            elec_recip: recip,
            elec_corr: corr_ex + corr_self,
            ..Default::default()
        }
    }

    /// Complete force evaluation (short + long range). Overwrites `forces`.
    pub fn compute_forces(&mut self, system: &System, forces: &mut [Vec3]) -> FullEnergy {
        let mut e = self.short_range(system, forces);
        let l = self.long_range(system, forces);
        e.elec_recip = l.elec_recip;
        e.elec_corr = l.elec_corr;
        e
    }
}

/// An r-RESPA (impulse) multiple-timestep integrator: bonded forces every
/// inner step, non-bonded (real + reciprocal) every `k_nonbonded` steps.
pub struct MtsSimulator {
    pub full: FullElectrostatics,
    /// Inner timestep, fs.
    pub dt: f64,
    /// Non-bonded (slow) forces evaluated every this many inner steps.
    pub k_nonbonded: usize,
    slow_forces: Vec<Vec3>,
    fast_forces: Vec<Vec3>,
    slow_energy: FullEnergy,
    primed: bool,
}

impl MtsSimulator {
    /// Create an MTS integrator. `k_nonbonded = 1` reduces to plain velocity
    /// Verlet with full electrostatics.
    pub fn new(system: &System, mesh_spacing: f64, dt: f64, k_nonbonded: usize) -> Self {
        assert!(dt > 0.0 && k_nonbonded >= 1);
        let n = system.n_atoms();
        MtsSimulator {
            full: FullElectrostatics::new(system, mesh_spacing),
            dt,
            k_nonbonded,
            slow_forces: vec![Vec3::ZERO; n],
            fast_forces: vec![Vec3::ZERO; n],
            slow_energy: FullEnergy::default(),
            primed: false,
        }
    }

    /// Fast (bonded-only) forces into `fast_forces`.
    fn eval_fast(&mut self, system: &System) -> f64 {
        self.fast_forces.fill(Vec3::ZERO);
        let e = compute_bonded(
            &system.topology,
            &system.cell,
            &system.positions,
            &mut self.fast_forces,
        );
        e.total()
    }

    /// Slow (all non-bonded) forces into `slow_forces`.
    fn eval_slow(&mut self, system: &System) {
        // Short-range evaluates bonded too; subtract it by evaluating into a
        // scratch and removing the bonded part — cheaper: evaluate the full
        // non-bonded via the pairlist kernel directly.
        let lj = system.lj_types();
        let q = system.charges();
        let cl = CellList::build(&system.cell, &system.positions, system.forcefield.cutoff);
        let pairs = cl.neighbor_pairs(&system.positions, system.forcefield.cutoff);
        self.slow_forces.fill(Vec3::ZERO);
        let nb = mdcore::nonbonded::nb_pairlist(
            &system.forcefield,
            &system.exclusions,
            &system.positions,
            &lj,
            &q,
            &pairs,
            &system.cell,
            &mut self.slow_forces,
        );
        let l = self.full.long_range(system, &mut self.slow_forces);
        self.slow_energy = FullEnergy {
            lj: nb.e_lj,
            elec_real: nb.e_elec,
            elec_recip: l.elec_recip,
            elec_corr: l.elec_corr,
            ..Default::default()
        };
    }

    /// Advance one *outer* step (`k_nonbonded` inner steps). Returns the
    /// energy at the end of the outer step.
    pub fn outer_step(&mut self, system: &mut System) -> FullEnergy {
        let dt = self.dt;
        let k = self.k_nonbonded;
        let masses = system.masses();
        if !self.primed {
            self.eval_slow(system);
            self.primed = true;
        }

        // Outer half-kick with slow forces.
        for i in 0..system.n_atoms() {
            system.velocities[i] +=
                self.slow_forces[i] * (units::ACCEL / masses[i]) * (0.5 * k as f64 * dt);
        }
        // Inner velocity-Verlet loop with fast forces.
        let mut e_bonded = self.eval_fast(system);
        for _ in 0..k {
            for i in 0..system.n_atoms() {
                system.velocities[i] +=
                    self.fast_forces[i] * (units::ACCEL / masses[i]) * (0.5 * dt);
                system.positions[i] =
                    system.cell.wrap(system.positions[i] + system.velocities[i] * dt);
            }
            e_bonded = self.eval_fast(system);
            for i in 0..system.n_atoms() {
                system.velocities[i] +=
                    self.fast_forces[i] * (units::ACCEL / masses[i]) * (0.5 * dt);
            }
        }
        // New slow forces and the closing outer half-kick.
        self.eval_slow(system);
        for i in 0..system.n_atoms() {
            system.velocities[i] +=
                self.slow_forces[i] * (units::ACCEL / masses[i]) * (0.5 * k as f64 * dt);
        }

        FullEnergy {
            bonded: e_bonded,
            kinetic: system.kinetic_energy(),
            ..self.slow_energy
        }
    }

    /// Run `n` outer steps.
    pub fn run(&mut self, system: &mut System, n: usize) -> Vec<FullEnergy> {
        (0..n).map(|_| self.outer_step(system)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ewald::ewald_direct;

    /// A small neutral water box in Ewald mode.
    fn ewald_water(n_side: usize, beta: f64) -> System {
        let mut topo = Topology::default();
        let mut pos = Vec::new();
        let spacing = 3.2;
        for ix in 0..n_side {
            for iy in 0..n_side {
                for iz in 0..n_side {
                    let base = Vec3::new(
                        ix as f64 * spacing + 0.6,
                        iy as f64 * spacing + 0.6,
                        iz as f64 * spacing + 0.6,
                    );
                    push_water(&mut topo, 0, 1);
                    pos.push(base);
                    pos.push(base + Vec3::new(0.9572, 0.0, 0.0));
                    pos.push(base + Vec3::new(-0.2399, 0.9266, 0.0));
                }
            }
        }
        let l = n_side as f64 * spacing;
        let ff = ForceField::biomolecular((l / 2.0 - 0.1).min(9.0)).with_ewald(beta);
        System::new(topo, ff, Cell::cube(l), pos)
    }

    #[test]
    fn full_forces_match_direct_ewald_reference() {
        // The production path (mdcore Ewald-mode kernels + PME) must agree
        // with the exact direct Ewald sum on the electrostatic part.
        let sys = ewald_water(3, 0.6);
        let q = sys.charges();

        let mut full = FullElectrostatics::new(&sys, 0.6);
        let mut f_full = vec![Vec3::ZERO; sys.n_atoms()];
        let e_full = full.compute_forces(&sys, &mut f_full);

        let params = EwaldParams { beta: 0.6, r_cut: sys.forcefield.cutoff, kmax: 14 };
        let mut f_ref = vec![Vec3::ZERO; sys.n_atoms()];
        let e_ref = ewald_direct(&sys.cell, &sys.positions, &q, &sys.exclusions, &params, &mut f_ref);

        let got = e_full.electrostatic();
        let want = e_ref.total();
        assert!(
            (got / want - 1.0).abs() < 5e-3,
            "electrostatics: full {got} vs direct {want}"
        );
    }

    #[test]
    fn full_forces_are_minus_gradient() {
        let sys = ewald_water(2, 0.7);
        let mut full = FullElectrostatics::new(&sys, 0.5);
        let mut f = vec![Vec3::ZERO; sys.n_atoms()];
        full.compute_forces(&sys, &mut f);

        let h = 1e-5;
        for atom in [0usize, 4, 10] {
            for axis in 0..3 {
                let mut plus = sys.clone();
                *plus.positions[atom].axis_mut(axis) += h;
                let mut minus = sys.clone();
                *minus.positions[atom].axis_mut(axis) -= h;
                let mut tmp = vec![Vec3::ZERO; sys.n_atoms()];
                let ep = full.compute_forces(&plus, &mut tmp).potential();
                let em = full.compute_forces(&minus, &mut tmp).potential();
                let fd = -(ep - em) / (2.0 * h);
                let an = f[atom].axis(axis);
                assert!(
                    (fd - an).abs() < 2e-2 * (1.0 + an.abs()),
                    "atom {atom} axis {axis}: fd {fd} vs analytic {an}"
                );
            }
        }
    }

    #[test]
    fn mts_with_k1_conserves_energy() {
        let mut sys = ewald_water(3, 0.6);
        sys.thermalize(100.0, 3);
        let mut sim = MtsSimulator::new(&sys, 0.7, 0.5, 1);
        let energies = sim.run(&mut sys, 30);
        let e0 = energies[1].total();
        let e1 = energies.last().unwrap().total();
        let drift = (e1 - e0).abs() / e0.abs().max(1.0);
        assert!(drift < 1e-2, "k=1 drift {drift}: {e0} -> {e1}");
    }

    #[test]
    fn mts_with_k4_conserves_energy() {
        let mut sys = ewald_water(3, 0.6);
        sys.thermalize(100.0, 7);
        let mut sim = MtsSimulator::new(&sys, 0.7, 0.25, 4);
        let energies = sim.run(&mut sys, 30);
        let e0 = energies[1].total();
        let e1 = energies.last().unwrap().total();
        let drift = (e1 - e0).abs() / e0.abs().max(1.0);
        assert!(drift < 2e-2, "k=4 drift {drift}: {e0} -> {e1}");
    }

    #[test]
    fn mts_trajectories_agree_with_small_timestep_reference() {
        // k=2 at dt=0.25 should stay close to k=1 at dt=0.25 over a few fs.
        let mut sys_a = ewald_water(2, 0.7);
        sys_a.thermalize(50.0, 9);
        let mut sys_b = sys_a.clone();

        let mut sim_a = MtsSimulator::new(&sys_a, 0.5, 0.25, 1);
        let mut sim_b = MtsSimulator::new(&sys_b, 0.5, 0.25, 2);
        sim_a.run(&mut sys_a, 8); // 8 inner steps
        sim_b.run(&mut sys_b, 4); // 4 outer × 2 inner

        let mut max_d = 0.0f64;
        for i in 0..sys_a.n_atoms() {
            max_d = max_d.max((sys_a.positions[i] - sys_b.positions[i]).norm());
        }
        assert!(max_d < 5e-3, "MTS trajectory deviation {max_d} Å");
    }

    #[test]
    fn mesh_spacing_controls_mesh_size() {
        let sys = ewald_water(3, 0.6);
        let coarse = FullElectrostatics::new(&sys, 1.5);
        let fine = FullElectrostatics::new(&sys, 0.5);
        assert!(fine.mesh()[0] > coarse.mesh()[0]);
    }
}
