//! Smooth particle-mesh Ewald (Essmann et al., 1995): the FFT-based
//! reciprocal-space solver — the "grid-based component" of full
//! electrostatics whose parallelization the paper cites as ongoing work
//! [14, 16].
//!
//! Pipeline per evaluation:
//! 1. spread charges onto a regular mesh with cardinal B-splines,
//! 2. forward 3-D FFT of the charge mesh,
//! 3. multiply by the influence function
//!    `C/(πV) · exp(−π²m̃²/β²)/m̃² · |b₁b₂b₃|²`,
//! 4. inverse FFT → a convolved potential mesh,
//! 5. energy = ½·Σ Q·φ; forces gathered with analytic B-spline derivatives.
//!
//! Validated against the exact direct k-space sum in [`crate::ewald`].

use crate::ewald::EwaldParams;
use crate::fft::{next_pow2, Grid3};
use mdcore::forcefield::units;
use mdcore::prelude::*;

/// PME configuration.
#[derive(Debug, Clone, Copy)]
pub struct PmeParams {
    /// Ewald screening parameter β, Å⁻¹ (shared with the real-space part).
    pub beta: f64,
    /// Interpolation (B-spline) order; 4 and 6 are supported.
    pub order: usize,
    /// Mesh points per axis (powers of two).
    pub mesh: [usize; 3],
}

impl PmeParams {
    /// Choose a mesh with spacing ≤ `max_spacing` Å (rounded up to powers of
    /// two) for the given cell, order 4.
    pub fn for_cell(cell: &Cell, beta: f64, max_spacing: f64) -> PmeParams {
        assert!(max_spacing > 0.0);
        let dim = |l: f64| next_pow2((l / max_spacing).ceil() as usize).max(4);
        PmeParams {
            beta,
            order: 4,
            mesh: [dim(cell.lengths.x), dim(cell.lengths.y), dim(cell.lengths.z)],
        }
    }

    /// Derive matching PME parameters from direct-Ewald parameters.
    pub fn matching(cell: &Cell, ewald: &EwaldParams, max_spacing: f64) -> PmeParams {
        PmeParams::for_cell(cell, ewald.beta, max_spacing)
    }
}

/// Cardinal B-spline values `M_n(w), M_n(w+1), …, M_n(w+n−1)` and their
/// derivatives, for fractional offset `w ∈ [0, 1)`. Grid point `u0 − j`
/// receives weight `M_n(w + j)`.
fn bspline(order: usize, w: f64) -> (Vec<f64>, Vec<f64>) {
    debug_assert!((0.0..1.0).contains(&w));
    assert!(order >= 2);
    // Start from M₂ at arguments w+j: M₂(w) = w, M₂(w+1) = 1 − w, else 0.
    let mut cur = vec![0.0; order];
    cur[0] = w;
    cur[1] = 1.0 - w;
    if order == 2 {
        return (cur, vec![1.0, -1.0]);
    }
    // Raise the order with the recursion
    // M_k(u) = [u·M_{k−1}(u) + (k−u)·M_{k−1}(u−1)]/(k−1),
    // keeping the previous order for the derivative identity
    // M_k'(u) = M_{k−1}(u) − M_{k−1}(u−1).
    let mut prev = vec![0.0; order];
    for k in 3..=order {
        prev.copy_from_slice(&cur);
        for j in (0..order).rev() {
            let u = w + j as f64;
            let m_u = if j < k - 1 { prev[j] } else { 0.0 };
            let m_um1 = if j >= 1 { prev[j - 1] } else { 0.0 };
            cur[j] = (u * m_u + (k as f64 - u) * m_um1) / (k as f64 - 1.0);
        }
    }
    let mut d = vec![0.0; order];
    for j in 0..order {
        let m_u = if j < order - 1 { prev[j] } else { 0.0 };
        let m_um1 = if j >= 1 { prev[j - 1] } else { 0.0 };
        d[j] = m_u - m_um1;
    }
    (cur, d)
}

/// |b(m)|² Euler exponential-spline factor for one axis.
fn bmod2(order: usize, mesh: usize) -> Vec<f64> {
    // M_n values at integer arguments (w = 0): m_int[j] = M_n(j), with
    // M_n(0) = 0 and the interior values at j = 1..n−1.
    let (m_int, _) = bspline(order, 0.0);
    // Denominator: Σ_{j=0}^{n-2} M_n(j+1) e^{2πi m j / K}.
    let mut out = vec![0.0; mesh];
    for mm in 0..mesh {
        let mut re = 0.0;
        let mut im = 0.0;
        for j in 0..order - 1 {
            let phase = 2.0 * std::f64::consts::PI * (mm as f64) * (j as f64) / mesh as f64;
            let mn = m_int[j + 1]; // M_n(j+1)
            re += mn * phase.cos();
            im += mn * phase.sin();
        }
        let denom = re * re + im * im;
        out[mm] = if denom < 1e-10 { 0.0 } else { 1.0 / denom };
    }
    out
}

/// The PME solver with reusable buffers.
///
/// ```
/// use mdcore::prelude::{Cell, Vec3};
/// use pme::mesh::{Pme, PmeParams};
///
/// let cell = Cell::cube(16.0);
/// let mut pme = Pme::new(&cell, PmeParams { beta: 0.4, order: 4, mesh: [16, 16, 16] });
/// let pos = vec![Vec3::new(5.0, 8.0, 8.0), Vec3::new(11.0, 8.0, 8.0)];
/// let q = vec![1.0, -1.0];
/// let mut forces = vec![Vec3::ZERO; 2];
/// let e = pme.reciprocal(&pos, &q, &mut forces);
/// assert!(e.reciprocal.is_finite());
/// // Newton's third law holds for the mesh forces.
/// assert!((forces[0] + forces[1]).norm() < 1e-9);
/// // Opposite charges 6 Å apart: the long-range part pulls them together.
/// assert!(forces[0].x > 0.0 && forces[1].x < 0.0);
/// ```
pub struct Pme {
    pub params: PmeParams,
    grid: Grid3,
    /// Influence function (BC array), indexed like the grid.
    influence: Vec<f64>,
    cell: Cell,
}

/// Result of a PME reciprocal evaluation.
#[derive(Debug, Clone, Copy)]
pub struct PmeEnergy {
    /// Reciprocal-space energy, kcal/mol.
    pub reciprocal: f64,
}

impl Pme {
    /// Build a solver for a fixed cell (mesh geometry depends on it).
    pub fn new(cell: &Cell, params: PmeParams) -> Pme {
        assert!(
            cell.periodic.iter().all(|&p| p),
            "PME requires a fully periodic cell"
        );
        assert!(
            params.order == 4 || params.order == 6,
            "supported B-spline orders: 4, 6"
        );
        let [nx, ny, nz] = params.mesh;
        let grid = Grid3::new(nx, ny, nz);
        let influence = Self::influence_fn(cell, &params);
        Pme { params, grid, influence, cell: *cell }
    }

    /// Precompute the influence function
    /// `N·C/(πV)·exp(−π²m̃²/β²)/m̃²·|b₁|²|b₂|²|b₃|²` (zero at m = 0).
    fn influence_fn(cell: &Cell, params: &PmeParams) -> Vec<f64> {
        let [nx, ny, nz] = params.mesh;
        let (bx, by, bz) = (
            bmod2(params.order, nx),
            bmod2(params.order, ny),
            bmod2(params.order, nz),
        );
        let v = cell.volume();
        let n_total = (nx * ny * nz) as f64;
        let pref = n_total * units::COULOMB / (std::f64::consts::PI * v);
        let pi2_beta2 = std::f64::consts::PI.powi(2) / (params.beta * params.beta);
        let mut out = vec![0.0; nx * ny * nz];
        for mz in 0..nz {
            // Map FFT index to signed mode number.
            let fz = if mz <= nz / 2 { mz as f64 } else { mz as f64 - nz as f64 };
            for my in 0..ny {
                let fy = if my <= ny / 2 { my as f64 } else { my as f64 - ny as f64 };
                for mx in 0..nx {
                    let fx = if mx <= nx / 2 { mx as f64 } else { mx as f64 - nx as f64 };
                    let idx = mx + nx * (my + ny * mz);
                    if mx == 0 && my == 0 && mz == 0 {
                        out[idx] = 0.0;
                        continue;
                    }
                    let mt2 = (fx / cell.lengths.x).powi(2)
                        + (fy / cell.lengths.y).powi(2)
                        + (fz / cell.lengths.z).powi(2);
                    out[idx] =
                        pref * (-pi2_beta2 * mt2).exp() / mt2 * bx[mx] * by[my] * bz[mz];
                }
            }
        }
        out
    }

    /// Evaluate the reciprocal-space energy and accumulate forces.
    pub fn reciprocal(&mut self, pos: &[Vec3], q: &[f64], forces: &mut [Vec3]) -> PmeEnergy {
        assert_eq!(pos.len(), q.len());
        assert_eq!(pos.len(), forces.len());
        let [nx, ny, nz] = self.params.mesh;
        let order = self.params.order;
        self.grid.clear();

        // 1. Charge spreading. Cache per-atom spline data for the gather.
        struct Spread {
            u0: [isize; 3],
            m: [Vec<f64>; 3],
            d: [Vec<f64>; 3],
        }
        let mut spreads = Vec::with_capacity(pos.len());
        for (i, &p) in pos.iter().enumerate() {
            let f = self.cell.fractional(self.cell.wrap(p));
            let u = [f.x * nx as f64, f.y * ny as f64, f.z * nz as f64];
            let mut m_arr: [Vec<f64>; 3] = Default::default();
            let mut d_arr: [Vec<f64>; 3] = Default::default();
            let mut u0 = [0isize; 3];
            for ax in 0..3 {
                let floor = u[ax].floor();
                u0[ax] = floor as isize;
                let (m, d) = bspline(order, u[ax] - floor);
                m_arr[ax] = m;
                d_arr[ax] = d;
            }
            // Scatter q·Mx·My·Mz.
            for jz in 0..order {
                let gz = (u0[2] - jz as isize).rem_euclid(nz as isize) as usize;
                for jy in 0..order {
                    let gy = (u0[1] - jy as isize).rem_euclid(ny as isize) as usize;
                    let wyz = m_arr[1][jy] * m_arr[2][jz] * q[i];
                    for jx in 0..order {
                        let gx = (u0[0] - jx as isize).rem_euclid(nx as isize) as usize;
                        let idx = self.grid.idx(gx, gy, gz);
                        self.grid.data[idx].re += m_arr[0][jx] * wyz;
                    }
                }
            }
            spreads.push(Spread { u0, m: m_arr, d: d_arr });
        }

        // 2-4. Convolve with the influence function in k-space.
        self.grid.fft(false);
        let mut energy = 0.0;
        for (c, &g) in self.grid.data.iter_mut().zip(&self.influence) {
            energy += g * c.norm2();
            *c = c.scale(g);
        }
        self.grid.fft(true);
        self.grid.normalize_inverse();
        let n_total = (nx * ny * nz) as f64;
        // E = (1/2N)·Σ BC·|F(Q)|².
        let energy = energy / (2.0 * n_total);

        // 5. Force gather: F_i = −q_i Σ_g φ(g)·∇(Mx·My·Mz). B-spline
        // interpolation leaves a tiny spurious net force (a well-known SPME
        // artifact); like production MD codes we remove the mean afterwards.
        let mut net = Vec3::ZERO;
        let mut gathered = vec![Vec3::ZERO; pos.len()];
        for (i, s) in spreads.iter().enumerate() {
            let mut grad = Vec3::ZERO;
            for jz in 0..order {
                let gz = (s.u0[2] - jz as isize).rem_euclid(nz as isize) as usize;
                for jy in 0..order {
                    let gy = (s.u0[1] - jy as isize).rem_euclid(ny as isize) as usize;
                    for jx in 0..order {
                        let gx = (s.u0[0] - jx as isize).rem_euclid(nx as isize) as usize;
                        let phi = self.grid.data[self.grid.idx(gx, gy, gz)].re;
                        grad.x += phi * s.d[0][jx] * s.m[1][jy] * s.m[2][jz];
                        grad.y += phi * s.m[0][jx] * s.d[1][jy] * s.m[2][jz];
                        grad.z += phi * s.m[0][jx] * s.m[1][jy] * s.d[2][jz];
                    }
                }
            }
            // du/dx = K/L per axis.
            let f = Vec3::new(
                -q[i] * grad.x * nx as f64 / self.cell.lengths.x,
                -q[i] * grad.y * ny as f64 / self.cell.lengths.y,
                -q[i] * grad.z * nz as f64 / self.cell.lengths.z,
            );
            gathered[i] = f;
            net += f;
        }
        let correction = net / pos.len() as f64;
        for (i, f) in gathered.into_iter().enumerate() {
            forces[i] += f - correction;
        }
        PmeEnergy { reciprocal: energy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ewald;

    #[test]
    fn bspline_partition_of_unity() {
        for order in [4usize, 6] {
            for w in [0.0, 0.2, 0.5, 0.9] {
                let (m, d) = bspline(order, w);
                let sum: f64 = m.iter().sum();
                assert!((sum - 1.0).abs() < 1e-12, "order {order} w {w}: sum {sum}");
                let dsum: f64 = d.iter().sum();
                assert!(dsum.abs() < 1e-12, "derivatives must sum to 0: {dsum}");
                assert!(m.iter().all(|&x| x >= -1e-15), "negative spline weight");
            }
        }
    }

    #[test]
    fn bspline_matches_known_m4_values() {
        // M4 at integer arguments: M4(1) = 1/6, M4(2) = 4/6, M4(3) = 1/6.
        let (m, _) = bspline(4, 0.0);
        assert!((m[0] - 0.0).abs() < 1e-12); // M4(0)
        assert!((m[1] - 1.0 / 6.0).abs() < 1e-12); // M4(1)
        assert!((m[2] - 4.0 / 6.0).abs() < 1e-12); // M4(2)
        assert!((m[3] - 1.0 / 6.0).abs() < 1e-12); // M4(3)
    }

    #[test]
    fn bspline_derivative_matches_fd() {
        for order in [4usize, 6] {
            let h = 1e-6;
            let (mp, _) = bspline(order, 0.4 + h);
            let (mm, _) = bspline(order, 0.4 - h);
            let (_, d) = bspline(order, 0.4);
            for j in 0..order {
                let fd = (mp[j] - mm[j]) / (2.0 * h);
                assert!(
                    (fd - d[j]).abs() < 1e-6,
                    "order {order} j {j}: fd {fd} vs {}",
                    d[j]
                );
            }
        }
    }

    fn random_system(n: usize, l: f64, seed: u64) -> (Cell, Vec<Vec3>, Vec<f64>) {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let cell = Cell::cube(l);
        let pos: Vec<Vec3> = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                )
            })
            .collect();
        // Alternating charges, exactly neutral.
        let q: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 0.4 } else { -0.4 }).collect();
        (cell, pos, q)
    }

    #[test]
    fn pme_energy_matches_direct_ewald() {
        let (cell, pos, q) = random_system(40, 16.0, 3);
        let beta = 0.45;
        let mut f_direct = vec![Vec3::ZERO; pos.len()];
        let params = ewald::EwaldParams { beta, r_cut: 7.0, kmax: 14 };
        let e_direct = ewald::reciprocal_direct(&cell, &pos, &q, &params, &mut f_direct);

        let mut pme = Pme::new(&cell, PmeParams { beta, order: 4, mesh: [32, 32, 32] });
        let mut f_pme = vec![Vec3::ZERO; pos.len()];
        let e_pme = pme.reciprocal(&pos, &q, &mut f_pme).reciprocal;

        assert!(
            (e_pme / e_direct - 1.0).abs() < 2e-3,
            "PME {e_pme} vs direct {e_direct}"
        );
    }

    #[test]
    fn pme_forces_match_direct_ewald() {
        let (cell, pos, q) = random_system(24, 14.0, 9);
        let beta = 0.5;
        let mut f_direct = vec![Vec3::ZERO; pos.len()];
        let params = ewald::EwaldParams { beta, r_cut: 6.5, kmax: 16 };
        ewald::reciprocal_direct(&cell, &pos, &q, &params, &mut f_direct);

        let mut pme = Pme::new(&cell, PmeParams { beta, order: 6, mesh: [32, 32, 32] });
        let mut f_pme = vec![Vec3::ZERO; pos.len()];
        pme.reciprocal(&pos, &q, &mut f_pme);

        let fscale = f_direct.iter().map(|f| f.norm()).fold(0.0, f64::max).max(1e-6);
        for i in 0..pos.len() {
            let d = (f_pme[i] - f_direct[i]).norm();
            assert!(
                d < 5e-3 * fscale,
                "atom {i}: PME {:?} vs direct {:?} (Δ {d})",
                f_pme[i],
                f_direct[i]
            );
        }
    }

    #[test]
    fn pme_forces_conserve_momentum() {
        let (cell, pos, q) = random_system(30, 15.0, 5);
        let mut pme =
            Pme::new(&cell, PmeParams { beta: 0.45, order: 4, mesh: [16, 16, 16] });
        let mut f = vec![Vec3::ZERO; pos.len()];
        pme.reciprocal(&pos, &q, &mut f);
        let net: Vec3 = f.iter().copied().sum();
        let scale = f.iter().map(|v| v.norm()).fold(0.0, f64::max).max(1e-9);
        assert!(net.norm() < 1e-9 * scale.max(1.0), "net force {net:?}");
    }

    #[test]
    fn finer_mesh_converges_to_direct() {
        let (cell, pos, q) = random_system(20, 12.0, 7);
        let beta = 0.5;
        let params = ewald::EwaldParams { beta, r_cut: 5.9, kmax: 16 };
        let mut f = vec![Vec3::ZERO; pos.len()];
        let exact = ewald::reciprocal_direct(&cell, &pos, &q, &params, &mut f);
        let mut errs = Vec::new();
        for mesh in [8usize, 16, 32] {
            let mut pme =
                Pme::new(&cell, PmeParams { beta, order: 4, mesh: [mesh, mesh, mesh] });
            let mut f = vec![Vec3::ZERO; pos.len()];
            let e = pme.reciprocal(&pos, &q, &mut f).reciprocal;
            errs.push((e / exact - 1.0).abs());
        }
        assert!(errs[2] < errs[0], "no convergence: {errs:?}");
        assert!(errs[2] < 1e-3, "finest mesh error {:?}", errs[2]);
    }

    #[test]
    fn params_for_cell_round_up() {
        let cell = Cell::periodic(Vec3::ZERO, Vec3::new(30.0, 60.0, 33.0));
        let p = PmeParams::for_cell(&cell, 0.35, 1.2);
        assert_eq!(p.mesh, [32, 64, 32]);
        assert!(p.mesh.iter().all(|m| m.is_power_of_two()));
    }
}
