//! Projections-grade observability for the runtime layer (§4.1).
//!
//! NAMD's authors diagnosed grainsize problems and load imbalance with
//! Projections: per-entry summary profiles, grainsize histograms
//! (Figures 1–2) and per-PE timelines (Figures 3–4). This crate is that
//! toolbox for the reproduction, built on the raw measurements
//! [`charmrt`] already collects:
//!
//! * **[`TraceSink`]** — a streaming consumer of entry-method executions.
//!   [`MemorySink`] retains them for tests; [`ChromeTraceWriter`] emits
//!   Chrome trace-event JSON that loads directly into Perfetto or
//!   `chrome://tracing`, one track per PE, one category per chare family,
//!   with instant markers for phase boundaries, load-balancing decisions
//!   and checkpoint barriers.
//! * **[`UtilizationReport`]** — per-PE busy time split into application
//!   work, messaging overhead and idle time. On the DES the three parts
//!   must tile the phase span exactly; the engine's oracle checks it.
//! * **[`GrainsizeReport`]** — the paper's per-entry grainsize histograms
//!   as a first-class report rather than an example-only diagnostic.
//! * **[`CriticalPathReport`]** — the longest dependency chain through the
//!   message graph, the lower bound no schedule can beat.
//! * **[`LbAudit`]** — one record per load-balancer decision: predicted
//!   per-PE loads before and after, and the exact migration list.
//! * **[`MetricsRegistry`]** — the single object the engine threads
//!   through a run. It accumulates the above per phase and, when given a
//!   directory, streams trace files and JSONL reports to disk.

use charmrt::{Histogram, Pe, SummaryStats, Trace};
use std::collections::BTreeSet;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Entry-method → category mapping
// ---------------------------------------------------------------------------

/// Map an entry-method name to a trace category (Perfetto colors tracks by
/// category, so each chare family gets a stable hue).
pub fn entry_category(name: &str) -> &'static str {
    if name.starts_with("Nonbonded") {
        "nonbonded"
    } else if name.starts_with("Bonded") {
        "bonded"
    } else if name.starts_with("Pme") {
        "pme"
    } else if name.starts_with("Ckpt") {
        "checkpoint"
    } else if name.starts_with("Proxy") {
        "proxy"
    } else if name.starts_with("Patch") || name == "Integrate" {
        "patch"
    } else if name == "ComputeReady" || name == "Done" {
        "control"
    } else {
        "other"
    }
}

// ---------------------------------------------------------------------------
// Streaming trace sinks
// ---------------------------------------------------------------------------

/// A streaming consumer of trace events. The engine (or
/// [`write_trace`]) pushes one call per entry-method execution plus
/// instant markers; sinks never see the whole trace at once, so a writer
/// can stream arbitrarily long runs without holding them in memory.
pub trait TraceSink {
    /// One entry-method execution: `dur` seconds starting at `start`
    /// (virtual seconds on the DES, wall seconds on threads).
    fn span(
        &mut self,
        pe: Pe,
        obj: u32,
        name: &str,
        cat: &str,
        start: f64,
        dur: f64,
    ) -> io::Result<()>;

    /// A zero-duration marker (phase boundary, LB decision, checkpoint).
    fn instant(&mut self, name: &str, t: f64) -> io::Result<()>;

    /// Flush any buffered output.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A span retained by [`MemorySink`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub pe: Pe,
    pub obj: u32,
    pub name: String,
    pub cat: String,
    pub start: f64,
    pub dur: f64,
}

/// An in-memory [`TraceSink`] for tests and programmatic inspection.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    pub spans: Vec<SpanRecord>,
    pub instants: Vec<(String, f64)>,
}

impl TraceSink for MemorySink {
    fn span(
        &mut self,
        pe: Pe,
        obj: u32,
        name: &str,
        cat: &str,
        start: f64,
        dur: f64,
    ) -> io::Result<()> {
        self.spans.push(SpanRecord {
            pe,
            obj,
            name: name.to_string(),
            cat: cat.to_string(),
            start,
            dur,
        });
        Ok(())
    }

    fn instant(&mut self, name: &str, t: f64) -> io::Result<()> {
        self.instants.push((name.to_string(), t));
        Ok(())
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A [`TraceSink`] that writes the Chrome trace-event format (JSON array
/// of one-line event objects), loadable in Perfetto and `chrome://tracing`.
///
/// * each PE becomes a named track (`tid` = PE, `thread_name` metadata);
/// * spans are `ph:"X"` complete events with `ts`/`dur` in microseconds;
/// * markers are `ph:"i"` global instants.
///
/// Events stream one per line with a trailing comma; [`finish`] closes the
/// array so the output is strict JSON, but both viewers also accept a
/// truncated file (e.g. from a crashed run) — the format is
/// self-synchronizing per line.
///
/// [`finish`]: ChromeTraceWriter::finish
pub struct ChromeTraceWriter<W: Write> {
    out: W,
    seen_pes: BTreeSet<Pe>,
}

impl<W: Write> ChromeTraceWriter<W> {
    /// Start a trace stream: writes the array header and a process-name
    /// metadata record (`label` names the backend in the viewer).
    pub fn new(mut out: W, label: &str) -> io::Result<Self> {
        writeln!(out, "[")?;
        writeln!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{{\"name\":\"{}\"}}}},",
            json_escape(label)
        )?;
        Ok(ChromeTraceWriter { out, seen_pes: BTreeSet::new() })
    }

    fn declare_pe(&mut self, pe: Pe) -> io::Result<()> {
        if self.seen_pes.insert(pe) {
            writeln!(
                self.out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{pe},\
                 \"args\":{{\"name\":\"PE {pe}\"}}}},",
            )?;
        }
        Ok(())
    }

    /// Close the JSON array, making the output strict JSON, and return the
    /// underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        writeln!(self.out, "{{}}]")?;
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> TraceSink for ChromeTraceWriter<W> {
    fn span(
        &mut self,
        pe: Pe,
        obj: u32,
        name: &str,
        cat: &str,
        start: f64,
        dur: f64,
    ) -> io::Result<()> {
        self.declare_pe(pe)?;
        writeln!(
            self.out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{pe},\
             \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"obj\":{obj}}}}},",
            json_escape(name),
            json_escape(cat),
            start * 1e6,
            dur * 1e6,
        )
    }

    fn instant(&mut self, name: &str, t: f64) -> io::Result<()> {
        writeln!(
            self.out,
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":0,\"ts\":{:.3}}},",
            json_escape(name),
            t * 1e6,
        )
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Stream a recorded [`Trace`] into a sink: every event becomes a span
/// (named and categorized via `entry_names`), and checkpoint-barrier
/// releases (`CkptResume` broadcasts) become deduplicated instant markers.
pub fn write_trace(
    sink: &mut dyn TraceSink,
    trace: &Trace,
    entry_names: &[String],
) -> io::Result<()> {
    let mut ckpt_marks: Vec<f64> = Vec::new();
    for ev in &trace.events {
        let name = entry_names.get(ev.entry.idx()).map(String::as_str).unwrap_or("?");
        sink.span(ev.pe, ev.obj.0, name, entry_category(name), ev.start, ev.duration())?;
        if name == "CkptResume" {
            ckpt_marks.push(ev.start);
        }
    }
    // One marker per barrier, not per resumed patch: the broadcast fans
    // out to every patch, so collapse starts that round to the same tick.
    ckpt_marks.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ckpt_marks.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    for t in ckpt_marks {
        sink.instant("checkpoint barrier", t)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Utilization breakdown
// ---------------------------------------------------------------------------

/// One PE's share of a phase: application work + messaging overhead +
/// idle = span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeUtilization {
    pub pe: Pe,
    /// Pure application work, seconds (busy minus overhead).
    pub work: f64,
    /// Messaging overhead (receive + send + packing), seconds. Zero on
    /// the threads backend, which measures handlers whole.
    pub overhead: f64,
    /// Idle time, seconds (span minus busy).
    pub idle: f64,
    /// Phase span this PE was accounted over, seconds.
    pub span: f64,
}

impl PeUtilization {
    /// Total handler-executing time (work + overhead).
    pub fn busy(&self) -> f64 {
        self.work + self.overhead
    }

    /// `work + overhead + idle - span` — exactly zero on the DES up to
    /// floating-point roundoff; the oracle's utilization check enforces it.
    pub fn residual(&self) -> f64 {
        self.work + self.overhead + self.idle - self.span
    }
}

/// Per-phase per-PE utilization breakdown.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UtilizationReport {
    pub span: f64,
    pub pes: Vec<PeUtilization>,
}

impl UtilizationReport {
    /// Decompose a phase's [`SummaryStats`] over a span of `span` seconds
    /// (measured from `stats.window_start`).
    pub fn from_stats(stats: &SummaryStats, span: f64) -> Self {
        let pes = stats
            .pe_busy
            .iter()
            .enumerate()
            .map(|(pe, &busy)| {
                let overhead = stats.pe_overhead.get(pe).copied().unwrap_or(0.0);
                PeUtilization {
                    pe,
                    work: busy - overhead,
                    overhead,
                    idle: span - busy,
                    span,
                }
            })
            .collect();
        UtilizationReport { span, pes }
    }

    /// Mean busy fraction across PEs.
    pub fn avg_utilization(&self) -> f64 {
        if self.pes.is_empty() || self.span <= 0.0 {
            return 0.0;
        }
        self.pes.iter().map(|p| p.busy() / self.span).sum::<f64>() / self.pes.len() as f64
    }

    /// Render as a table (percent of span).
    pub fn render(&self) -> String {
        let mut s = String::from("PE      work%  overhead%      idle%\n");
        let span = self.span.max(1e-30);
        for p in &self.pes {
            s.push_str(&format!(
                "{:<4} {:>8.2} {:>10.2} {:>10.2}\n",
                p.pe,
                100.0 * p.work / span,
                100.0 * p.overhead / span,
                100.0 * p.idle / span,
            ));
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Grainsize report
// ---------------------------------------------------------------------------

/// Per-entry grainsize histograms over one phase — the paper's Figures 1–2
/// as a report instead of an example-only diagnostic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GrainsizeReport {
    /// `(entry name, histogram)` for every entry that executed.
    pub entries: Vec<(String, Histogram)>,
}

impl GrainsizeReport {
    /// Build from a phase trace. `bin_width` is in seconds; `per` divides
    /// counts (e.g. the number of timesteps, for per-step instance counts).
    pub fn from_trace(
        trace: &Trace,
        entry_names: &[String],
        t0: f64,
        t1: f64,
        bin_width: f64,
        per: f64,
    ) -> Self {
        let mut entries = Vec::new();
        for (idx, name) in entry_names.iter().enumerate() {
            let h = trace.grainsize_histogram(
                &[charmrt::EntryId(idx as u16)],
                t0,
                t1,
                bin_width,
                per,
            );
            if h.total() > 0 {
                entries.push((name.clone(), h));
            }
        }
        GrainsizeReport { entries }
    }

    /// Render every entry's histogram.
    pub fn render(&self, max_width: usize) -> String {
        let mut s = String::new();
        for (name, h) in &self.entries {
            s.push_str(&format!("{name} ({} tasks):\n{}", h.total(), h.render(max_width)));
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Critical path
// ---------------------------------------------------------------------------

/// The longest dependency chain through a phase's message graph, against
/// the phase's actual makespan. `critical_path <= makespan` always; their
/// ratio is the residual parallelism no schedule or PE count can recover.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CriticalPathReport {
    /// Longest chain of handler costs linked by messages, seconds.
    pub critical_path: f64,
    /// The phase's measured makespan, seconds.
    pub makespan: f64,
    pub n_steps: usize,
}

impl CriticalPathReport {
    /// Critical path per timestep — the per-step floor.
    pub fn per_step(&self) -> f64 {
        if self.n_steps == 0 {
            0.0
        } else {
            self.critical_path / self.n_steps as f64
        }
    }

    /// `makespan / critical_path`: how much faster an unbounded machine
    /// could have run this phase. 1.0 means the run was chain-limited.
    pub fn headroom(&self) -> f64 {
        if self.critical_path <= 0.0 {
            1.0
        } else {
            self.makespan / self.critical_path
        }
    }

    pub fn render(&self) -> String {
        format!(
            "critical path {:.6e}s over {} step(s) ({:.6e}s/step), makespan {:.6e}s, \
             headroom {:.2}x",
            self.critical_path,
            self.n_steps,
            self.per_step(),
            self.makespan,
            self.headroom(),
        )
    }
}

// ---------------------------------------------------------------------------
// Consolidated per-phase counters
// ---------------------------------------------------------------------------

/// Pair-list cache counters for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairlistCounters {
    /// Candidate-list (re)builds.
    pub builds: u64,
    /// Steps served from a still-valid cached list.
    pub hits: u64,
}

impl PairlistCounters {
    /// Total cached-kernel executions (builds + hits).
    pub fn executions(&self) -> u64 {
        self.builds + self.hits
    }

    /// Fraction of executions served from a valid cached list.
    pub fn hit_rate(&self) -> f64 {
        if self.executions() == 0 {
            0.0
        } else {
            self.hits as f64 / self.executions() as f64
        }
    }
}

/// The message-conservation ledger for one phase, copied out of
/// [`SummaryStats`] so a phase's bookkeeping travels as one value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageCounters {
    pub sent: u64,
    pub received: u64,
    pub injected: u64,
    pub dropped: u64,
    pub duplicated: u64,
    pub delayed: u64,
    pub redelivered: u64,
    pub discarded: u64,
    pub pes_killed: u64,
}

impl MessageCounters {
    /// Messages that entered the system but were neither received nor
    /// discarded — zero for any completed, fully-repaired phase
    /// (the invariant the conservation oracle checks).
    pub fn residual(&self) -> i64 {
        let entered =
            self.sent + self.injected + self.duplicated + self.redelivered - self.dropped;
        entered as i64 - (self.received + self.discarded) as i64
    }
}

impl From<&SummaryStats> for MessageCounters {
    fn from(s: &SummaryStats) -> Self {
        MessageCounters {
            sent: s.msgs_sent,
            received: s.msgs_received,
            injected: s.msgs_injected,
            dropped: s.msgs_dropped,
            duplicated: s.msgs_duplicated,
            delayed: s.msgs_delayed,
            redelivered: s.msgs_redelivered,
            discarded: s.msgs_discarded,
            pes_killed: s.pes_killed,
        }
    }
}

/// Every per-phase counter in one place: pair-list cache activity, the
/// message ledger, checkpoint barriers, and the critical path. Returned
/// from the engine's `PhaseResult::metrics` (the scattered fields it
/// replaces remain as deprecated shims).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseMetrics {
    pub pairlist: PairlistCounters,
    pub messages: MessageCounters,
    /// Checkpoint barriers completed during the phase.
    pub checkpoints: u64,
    /// Longest dependency chain through the phase's message graph, seconds.
    pub critical_path: f64,
    /// Messages that carried a non-empty packed payload (all backends share
    /// the wire format; on the `proc` backend these are the bytes that
    /// actually crossed the socket mesh).
    pub wire_msgs: u64,
    /// Total packed payload bytes across those messages.
    pub wire_bytes: u64,
}

// ---------------------------------------------------------------------------
// Load-balancer audit log
// ---------------------------------------------------------------------------

/// One compute moved by a load-balancing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// Engine compute index.
    pub compute: usize,
    pub from: Pe,
    pub to: Pe,
}

/// The audit record of one load-balancer decision: which strategy ran,
/// the per-PE loads it saw, the per-PE loads its assignment predicts,
/// and exactly which computes it moved.
#[derive(Debug, Clone, PartialEq)]
pub struct LbAudit {
    /// Index of the measurement phase whose loads the decision consumed.
    pub phase: usize,
    /// Strategy name (`"greedy"`, `"refine"`, …).
    pub strategy: String,
    /// Predicted per-PE load under the pre-decision placement, seconds.
    pub before: Vec<f64>,
    /// Predicted per-PE load under the new assignment, seconds.
    pub after: Vec<f64>,
    pub migrations: Vec<Migration>,
}

impl LbAudit {
    fn max(loads: &[f64]) -> f64 {
        loads.iter().copied().fold(0.0, f64::max)
    }

    fn avg(loads: &[f64]) -> f64 {
        if loads.is_empty() {
            0.0
        } else {
            loads.iter().sum::<f64>() / loads.len() as f64
        }
    }

    /// Predicted max/avg imbalance ratio before the decision.
    pub fn imbalance_before(&self) -> f64 {
        Self::max(&self.before) / Self::avg(&self.before).max(1e-30)
    }

    /// Predicted max/avg imbalance ratio after the decision.
    pub fn imbalance_after(&self) -> f64 {
        Self::max(&self.after) / Self::avg(&self.after).max(1e-30)
    }

    /// One-line JSON record (for `lb_audit.jsonl`).
    pub fn to_json_line(&self) -> String {
        let vec_json = |v: &[f64]| {
            let items: Vec<String> = v.iter().map(|x| format!("{x:.9e}")).collect();
            format!("[{}]", items.join(","))
        };
        let migs: Vec<String> = self
            .migrations
            .iter()
            .map(|m| format!("{{\"compute\":{},\"from\":{},\"to\":{}}}", m.compute, m.from, m.to))
            .collect();
        format!(
            "{{\"phase\":{},\"strategy\":\"{}\",\"before\":{},\"after\":{},\"migrations\":[{}]}}",
            self.phase,
            json_escape(&self.strategy),
            vec_json(&self.before),
            vec_json(&self.after),
            migs.join(","),
        )
    }

    pub fn render(&self) -> String {
        format!(
            "LB[{}] after phase {}: moved {} compute(s), predicted max/avg \
             {:.3} -> {:.3}",
            self.strategy,
            self.phase,
            self.migrations.len(),
            self.imbalance_before(),
            self.imbalance_after(),
        )
    }
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

/// A fully analyzed phase as retained by the [`MetricsRegistry`].
#[derive(Debug, Clone)]
pub struct PhaseProfile {
    pub index: usize,
    /// Backend label (`"des"` / `"threads"`).
    pub backend: String,
    pub n_steps: usize,
    /// Phase span (makespan), seconds.
    pub span: f64,
    pub metrics: PhaseMetrics,
    pub utilization: UtilizationReport,
    pub grainsize: GrainsizeReport,
    pub critical_path: CriticalPathReport,
}

/// The one observability object a run carries. Hand it to the engine
/// (`Engine::set_metrics`) and every phase records a [`PhaseProfile`] and
/// every load-balancer decision an [`LbAudit`]. With a directory attached
/// it also streams, per captured phase, a Perfetto-loadable
/// `trace_phase{N}_{backend}.json`, and appends `phases.jsonl` /
/// `lb_audit.jsonl` summary records. Off by default: a run without a
/// registry does no extra work beyond a few `Option` checks.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    dir: Option<PathBuf>,
    /// Capture a trace file every `interval`-th phase (1 = every phase).
    interval: usize,
    /// LB decisions since the last recorded phase, surfaced as instant
    /// markers at the start of the next phase's trace.
    pending_lb: Vec<String>,
    pub phases: Vec<PhaseProfile>,
    pub lb_audits: Vec<LbAudit>,
}

impl MetricsRegistry {
    /// A registry that only accumulates in memory (no files).
    pub fn in_memory() -> Self {
        MetricsRegistry { interval: 1, ..Default::default() }
    }

    /// A registry that also streams trace files and JSONL reports into
    /// `dir` (created if missing). `interval` captures a full trace every
    /// N-th phase; summaries are written for every phase regardless.
    pub fn with_dir(dir: impl Into<PathBuf>, interval: usize) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(MetricsRegistry {
            dir: Some(dir),
            interval: interval.max(1),
            ..Default::default()
        })
    }

    /// The output directory, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Whether the engine should enable tracing for the upcoming phase:
    /// reports need the trace on every captured phase.
    pub fn wants_trace(&self) -> bool {
        self.phases.len() % self.interval.max(1) == 0
    }

    fn append_line(&self, file: &str, line: &str) -> io::Result<()> {
        if let Some(dir) = &self.dir {
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.join(file))?;
            writeln!(f, "{line}")?;
        }
        Ok(())
    }

    /// Record one completed phase. `span` is the phase makespan; `trace`
    /// should be present whenever [`wants_trace`] was true before the
    /// phase ran. Returns any I/O error from streaming to the directory
    /// (in-memory accounting always succeeds).
    ///
    /// [`wants_trace`]: MetricsRegistry::wants_trace
    pub fn record_phase(
        &mut self,
        backend: &str,
        stats: &SummaryStats,
        trace: Option<&Trace>,
        span: f64,
        n_steps: usize,
        metrics: PhaseMetrics,
    ) -> io::Result<()> {
        let index = self.phases.len();
        let captured = trace.is_some() && self.wants_trace();
        let t0 = stats.window_start;
        let utilization = UtilizationReport::from_stats(stats, span);
        let grainsize = match trace {
            // Bin width follows the span so small test phases still get
            // resolved histograms: 200 bins across the longest task.
            Some(tr) => {
                let max_dur = tr
                    .events
                    .iter()
                    .map(|e| e.duration())
                    .fold(0.0, f64::max)
                    .max(1e-9);
                GrainsizeReport::from_trace(
                    tr,
                    &stats.entry_names,
                    t0,
                    t0 + span,
                    max_dur / 200.0,
                    n_steps.max(1) as f64,
                )
            }
            None => GrainsizeReport::default(),
        };
        let critical_path = CriticalPathReport {
            critical_path: stats.critical_path,
            makespan: span,
            n_steps,
        };

        let mut io_result = Ok(());
        if captured && self.dir.is_some() {
            io_result = self.write_trace_file(index, backend, stats, trace.unwrap(), span);
        }
        // Per-entry packed-bytes breakdown: only entries that moved payload
        // bytes, in registration order.
        let wire_by_entry: Vec<String> = stats
            .entry_names
            .names()
            .iter()
            .enumerate()
            .filter(|&(e, _)| stats.entry_wire_bytes.get(e).is_some_and(|&b| b > 0))
            .map(|(e, name)| {
                format!(
                    "\"{}\":{{\"msgs\":{},\"bytes\":{}}}",
                    json_escape(name),
                    stats.entry_wire_msgs[e],
                    stats.entry_wire_bytes[e]
                )
            })
            .collect();
        let summary = format!(
            "{{\"phase\":{index},\"backend\":\"{}\",\"steps\":{n_steps},\"span\":{span:.9e},\
             \"critical_path\":{:.9e},\"avg_utilization\":{:.6},\"pairlist_builds\":{},\
             \"pairlist_hits\":{},\"msg_residual\":{},\"checkpoints\":{},\
             \"wire_msgs\":{},\"wire_bytes\":{},\"wire_by_entry\":{{{}}}}}",
            json_escape(backend),
            metrics.critical_path,
            utilization.avg_utilization(),
            metrics.pairlist.builds,
            metrics.pairlist.hits,
            metrics.messages.residual(),
            metrics.checkpoints,
            metrics.wire_msgs,
            metrics.wire_bytes,
            wire_by_entry.join(","),
        );
        io_result = io_result.and(self.append_line("phases.jsonl", &summary));

        self.pending_lb.clear();
        self.phases.push(PhaseProfile {
            index,
            backend: backend.to_string(),
            n_steps,
            span,
            metrics,
            utilization,
            grainsize,
            critical_path,
        });
        io_result
    }

    fn write_trace_file(
        &self,
        index: usize,
        backend: &str,
        stats: &SummaryStats,
        trace: &Trace,
        span: f64,
    ) -> io::Result<()> {
        let dir = self.dir.as_ref().expect("caller checked dir");
        let path = dir.join(format!("trace_phase{index:03}_{backend}.json"));
        let file = std::io::BufWriter::new(std::fs::File::create(path)?);
        let mut w = ChromeTraceWriter::new(file, &format!("{backend} phase {index}"))?;
        let t0 = stats.window_start;
        w.instant(&format!("phase {index} begin"), t0)?;
        for lb in &self.pending_lb {
            w.instant(lb, t0)?;
        }
        write_trace(&mut w, trace, &stats.entry_names)?;
        w.instant(&format!("phase {index} end"), t0 + span)?;
        w.finish()?;
        Ok(())
    }

    /// Record one load-balancer decision.
    pub fn record_lb(&mut self, audit: LbAudit) -> io::Result<()> {
        let r = self.append_line("lb_audit.jsonl", &audit.to_json_line());
        self.pending_lb.push(audit.render());
        self.lb_audits.push(audit);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charmrt::{EntryId, ObjId, TraceEvent};

    fn sample_trace() -> (Trace, Vec<String>) {
        let mut t = Trace::default();
        let mut ev = |pe, obj, entry, start: f64, end: f64| {
            t.events.push(TraceEvent {
                pe,
                obj: ObjId(obj),
                entry: EntryId(entry),
                start,
                end,
                wall: 0.0,
            });
        };
        ev(0, 1, 0, 0.000010, 0.000030);
        ev(1, 2, 1, 0.000015, 0.000040);
        ev(0, 1, 1, 0.000030, 0.000055);
        let names = vec!["NonbondedPair".to_string(), "Integrate".to_string()];
        (t, names)
    }

    #[test]
    fn categories_cover_the_chare_families() {
        assert_eq!(entry_category("NonbondedSelf"), "nonbonded");
        assert_eq!(entry_category("NonbondedPair"), "nonbonded");
        assert_eq!(entry_category("BondedIntra"), "bonded");
        assert_eq!(entry_category("PmeSlabFft"), "pme");
        assert_eq!(entry_category("CkptReady"), "checkpoint");
        assert_eq!(entry_category("ProxyRecvCoords"), "proxy");
        assert_eq!(entry_category("PatchStart"), "patch");
        assert_eq!(entry_category("Integrate"), "patch");
        assert_eq!(entry_category("Done"), "control");
        assert_eq!(entry_category("Mystery"), "other");
    }

    #[test]
    fn memory_sink_collects_spans_and_instants() {
        let (t, names) = sample_trace();
        let mut sink = MemorySink::default();
        write_trace(&mut sink, &t, &names).unwrap();
        assert_eq!(sink.spans.len(), 3);
        assert_eq!(sink.spans[0].name, "NonbondedPair");
        assert_eq!(sink.spans[0].cat, "nonbonded");
        assert_eq!(sink.spans[1].pe, 1);
        assert!((sink.spans[2].dur - 0.000025).abs() < 1e-15);
        assert!(sink.instants.is_empty()); // no checkpoint entries in trace
    }

    #[test]
    fn chrome_writer_matches_golden_output() {
        let (t, names) = sample_trace();
        let mut w = ChromeTraceWriter::new(Vec::new(), "des").unwrap();
        w.instant("phase 0 begin", 0.0).unwrap();
        write_trace(&mut w, &t, &names).unwrap();
        let buf = w.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let golden = "\
[
{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"des\"}},
{\"name\":\"phase 0 begin\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":0,\"ts\":0.000},
{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"PE 0\"}},
{\"name\":\"NonbondedPair\",\"cat\":\"nonbonded\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":10.000,\"dur\":20.000,\"args\":{\"obj\":1}},
{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,\"args\":{\"name\":\"PE 1\"}},
{\"name\":\"Integrate\",\"cat\":\"patch\",\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":15.000,\"dur\":25.000,\"args\":{\"obj\":2}},
{\"name\":\"Integrate\",\"cat\":\"patch\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":30.000,\"dur\":25.000,\"args\":{\"obj\":1}},
{}]
";
        assert_eq!(text, golden);
    }

    #[test]
    fn chrome_writer_output_is_strict_json_shape() {
        let (t, names) = sample_trace();
        let mut w = ChromeTraceWriter::new(Vec::new(), "x").unwrap();
        write_trace(&mut w, &t, &names).unwrap();
        let text = String::from_utf8(w.finish().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "[");
        assert_eq!(lines[lines.len() - 1], "{}]");
        for line in &lines[1..lines.len() - 1] {
            assert!(line.starts_with('{') && line.ends_with("},"), "bad line: {line}");
            // Balanced braces on every line — each event is self-contained.
            let open = line.matches('{').count();
            let close = line.matches('}').count();
            assert_eq!(open, close, "unbalanced: {line}");
        }
    }

    #[test]
    fn utilization_tiles_the_span() {
        let mut s = SummaryStats::default();
        s.pe_busy = vec![0.6, 0.9];
        s.pe_overhead = vec![0.1, 0.2];
        s.window_start = 0.0;
        let u = UtilizationReport::from_stats(&s, 1.0);
        assert_eq!(u.pes.len(), 2);
        for p in &u.pes {
            assert!(p.residual().abs() < 1e-12, "residual {}", p.residual());
        }
        assert!((u.pes[0].work - 0.5).abs() < 1e-12);
        assert!((u.pes[1].idle - 0.1).abs() < 1e-12);
        assert!((u.avg_utilization() - 0.75).abs() < 1e-12);
        let txt = u.render();
        assert!(txt.lines().count() == 3 && txt.contains("overhead"));
    }

    #[test]
    fn grainsize_report_names_entries_and_skips_silent_ones() {
        let (t, names) = sample_trace();
        let names3 =
            vec![names[0].clone(), names[1].clone(), "NeverRan".to_string()];
        let g = GrainsizeReport::from_trace(&t, &names3, 0.0, 1.0, 1e-5, 1.0);
        assert_eq!(g.entries.len(), 2);
        assert_eq!(g.entries[0].0, "NonbondedPair");
        assert_eq!(g.entries[0].1.total(), 1);
        assert_eq!(g.entries[1].1.total(), 2);
        assert!(g.render(20).contains("Integrate"));
    }

    #[test]
    fn critical_path_report_bounds_and_renders() {
        let r = CriticalPathReport { critical_path: 0.25, makespan: 1.0, n_steps: 5 };
        assert!((r.per_step() - 0.05).abs() < 1e-15);
        assert!((r.headroom() - 4.0).abs() < 1e-12);
        assert!(r.render().contains("headroom 4.00x"));
        let empty = CriticalPathReport::default();
        assert_eq!(empty.per_step(), 0.0);
        assert_eq!(empty.headroom(), 1.0);
    }

    #[test]
    fn message_counters_residual_matches_summary_stats() {
        let mut s = SummaryStats::default();
        s.msgs_sent = 10;
        s.msgs_injected = 2;
        s.msgs_duplicated = 1;
        s.msgs_redelivered = 1;
        s.msgs_dropped = 2;
        s.msgs_received = 11;
        s.msgs_discarded = 0;
        let m = MessageCounters::from(&s);
        assert_eq!(m.residual(), s.conservation_residual());
        assert_eq!(m.residual(), 1);
    }

    #[test]
    fn lb_audit_renders_and_serializes() {
        let a = LbAudit {
            phase: 0,
            strategy: "greedy".into(),
            before: vec![3.0, 1.0],
            after: vec![2.0, 2.0],
            migrations: vec![Migration { compute: 7, from: 0, to: 1 }],
        };
        assert!((a.imbalance_before() - 1.5).abs() < 1e-12);
        assert!((a.imbalance_after() - 1.0).abs() < 1e-12);
        let line = a.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"strategy\":\"greedy\""));
        assert!(line.contains("\"compute\":7"));
        assert!(a.render().contains("moved 1 compute(s)"));
    }

    #[test]
    fn registry_accumulates_phases_and_audits_in_memory() {
        let (t, names) = sample_trace();
        let mut stats = SummaryStats::default();
        for n in &names {
            stats.entry_names.register(n);
        }
        stats.pe_busy = vec![4.5e-5, 2.5e-5];
        stats.pe_overhead = vec![0.5e-5, 0.2e-5];
        stats.critical_path = 4.0e-5;
        let mut reg = MetricsRegistry::in_memory();
        assert!(reg.wants_trace());
        let metrics = PhaseMetrics {
            pairlist: PairlistCounters { builds: 2, hits: 4 },
            critical_path: stats.critical_path,
            ..Default::default()
        };
        reg.record_phase("des", &stats, Some(&t), 6.0e-5, 1, metrics).unwrap();
        reg.record_lb(LbAudit {
            phase: 0,
            strategy: "refine".into(),
            before: vec![1.0, 2.0],
            after: vec![1.5, 1.5],
            migrations: vec![],
        })
        .unwrap();
        assert_eq!(reg.phases.len(), 1);
        assert_eq!(reg.lb_audits.len(), 1);
        let p = &reg.phases[0];
        assert_eq!(p.backend, "des");
        assert_eq!(p.metrics.pairlist.executions(), 6);
        assert!(p.utilization.avg_utilization() > 0.0);
        assert_eq!(p.grainsize.entries.len(), 2);
        assert!((p.critical_path.critical_path - 4.0e-5).abs() < 1e-18);
    }

    #[test]
    fn registry_interval_gates_trace_capture() {
        let dir = std::env::temp_dir().join(format!("profile-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (t, names) = sample_trace();
        let mut stats = SummaryStats::default();
        for n in &names {
            stats.entry_names.register(n);
        }
        stats.pe_busy = vec![1e-5, 1e-5];
        stats.pe_overhead = vec![0.0, 0.0];
        stats.entry_wire_msgs = vec![4, 0];
        stats.entry_wire_bytes = vec![4096, 0];
        let mut reg = MetricsRegistry::with_dir(&dir, 2).unwrap();
        for i in 0..3 {
            assert_eq!(reg.wants_trace(), i % 2 == 0);
            let tr = if reg.wants_trace() { Some(&t) } else { None };
            let metrics =
                PhaseMetrics { wire_msgs: 4, wire_bytes: 4096, ..Default::default() };
            reg.record_phase("des", &stats, tr, 1e-4, 2, metrics).unwrap();
        }
        let traces: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().into_string().unwrap())
            .filter(|n| n.starts_with("trace_phase"))
            .collect();
        assert_eq!(traces.len(), 2, "{traces:?}"); // phases 0 and 2
        let summary = std::fs::read_to_string(dir.join("phases.jsonl")).unwrap();
        assert_eq!(summary.lines().count(), 3);
        assert!(summary.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        // Packed-payload accounting reaches the summaries, per entry.
        assert!(summary.contains("\"wire_msgs\":4"), "{summary}");
        assert!(summary.contains("\"wire_bytes\":4096"), "{summary}");
        let first_entry = stats.entry_names.names()[0].clone();
        assert!(
            summary.contains(&format!("\"{first_entry}\":{{\"msgs\":4,\"bytes\":4096}}")),
            "{summary}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
