//! The headline experiment, sized for a laptop: the ApoA-I benchmark swept
//! across processor counts on the ASCI-Red machine model.
//!
//! By default a 1/10-scale ApoA-I-like system (~9,200 atoms) is used so the
//! example finishes in seconds; pass `--full` to run the true 92,224-atom
//! benchmark (≈1 minute).
//!
//! ```sh
//! cargo run --release --example apoa1_scaling [-- --full]
//! ```

use namd_repro::namd_core::prelude::*;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let bench = if full { namd_repro::molgen::apoa1_like() } else { namd_repro::molgen::apoa1_like().scaled(0.1) };
    println!(
        "system: {} ({} atoms){}",
        bench.name,
        bench.n_atoms,
        if full { "" } else { "  [1/10 scale; pass --full for the real size]" }
    );

    let machine = namd_repro::machine::presets::asci_red();
    let system = bench.build();
    let decomp = build_decomposition(&system, &SimConfig::new(1, machine));
    println!(
        "decomposition: {} patches, {} compute objects, ideal 1-PE step {:.2} s\n",
        decomp.grid.n_patches(),
        decomp.computes.len(),
        decomp.ideal_step_time(&machine)
    );

    println!("PEs     s/step   speedup   efficiency");
    let pe_counts: &[usize] =
        if full { &[1, 8, 64, 256, 512, 1024, 2048] } else { &[1, 4, 16, 64, 128, 256] };
    let mut t1 = 0.0;
    for &pes in pe_counts {
        let cfg = SimConfig::builder(pes, machine).steps_per_phase(3).build().unwrap();
        let mut engine = Engine::with_decomposition(system.clone(), decomp.clone(), cfg);
        let run = engine.run_benchmark();
        let t = run.final_time_per_step();
        if pes == 1 {
            t1 = t;
        }
        let speedup = t1 / t;
        println!(
            "{pes:>4} {:>10.4} {:>9.1} {:>10.1}%",
            t,
            speedup,
            100.0 * speedup / pes as f64
        );
    }
}
