//! Adaptation scenarios beyond the paper's tables:
//!
//! 1. **Stragglers** (the workstation-cluster scenario of the paper's
//!    ref [3]): a quarter of the processors run at half speed; the
//!    measurement-based balancer observes the inflated object times and
//!    sheds load from the slow machines.
//! 2. **Slow load drift** (§3.2's closing loop): object loads drift over
//!    time, and the periodic refinement pass keeps the step time pinned
//!    while a frozen placement degrades.
//!
//! ```sh
//! cargo run --release --example cluster_adaptation
//! ```

use namd_repro::mdcore::prelude::Vec3;
use namd_repro::namd_core::prelude::*;

fn test_system() -> namd_repro::mdcore::system::System {
    namd_repro::molgen::SystemBuilder::new(namd_repro::molgen::SystemSpec {
        name: "adaptation",
        box_lengths: Vec3::new(46.0, 46.0, 46.0),
        target_atoms: 9_000,
        protein_chains: 1,
        protein_chain_len: 90,
        lipid_slab: Some((16.0, 28.0)),
        cutoff: 9.0,
        seed: 5,
    })
    .build()
}

fn main() {
    let sys = test_system();
    let machine = namd_repro::machine::presets::asci_red();
    let n_pes = 32;

    // --- Scenario 1: stragglers -----------------------------------------
    println!("=== stragglers: 8 of {n_pes} PEs at half speed ===");
    let mut speeds = vec![1.0; n_pes];
    for s in speeds.iter_mut().take(8) {
        *s = 0.5;
    }
    for (label, lb) in [("static placement", LbStrategy::None), ("greedy + refine", LbStrategy::GreedyRefine)] {
        let cfg = SimConfig::builder(n_pes, machine)
            .pe_speeds(speeds.clone())
            .lb(lb)
            .steps_per_phase(3)
            .build()
            .unwrap();
        let mut engine = Engine::new(sys.clone(), cfg);
        let run = engine.run_benchmark();
        println!("{label:<22} {:.2} ms/step", run.final_time_per_step() * 1e3);
    }

    // --- Scenario 2: slow load drift ------------------------------------
    println!("\n=== slow load drift (σ = 20% per cycle, 8 cycles) ===");
    let run_with = |refine: bool| {
        let cfg = SimConfig::builder(n_pes, machine)
            .steps_per_phase(3)
            .load_drift(0.20)
            .build()
            .unwrap();
        let mut engine = Engine::new(sys.clone(), cfg);
        engine.run_long(8, refine)
    };
    let refined = run_with(true);
    let frozen = run_with(false);
    println!("cycle   frozen(ms)   periodic-refine(ms)");
    for (i, (f, r)) in frozen.iter().zip(&refined).enumerate() {
        println!("{i:>5} {:>12.2} {:>18.2}", f * 1e3, r * 1e3);
    }
    println!(
        "\nafter 8 cycles: frozen {:.2} ms vs refined {:.2} ms",
        frozen.last().unwrap() * 1e3,
        refined.last().unwrap() * 1e3
    );
}
