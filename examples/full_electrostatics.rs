//! Full electrostatics with real physics: Ewald + from-scratch FFT-based
//! particle-mesh Ewald, plus r-RESPA multiple timestepping.
//!
//! 1. Reproduces the Madelung constant of rock salt with the direct Ewald
//!    sum (the textbook correctness check).
//! 2. Runs NVE dynamics on a solvated system with PME reciprocal forces,
//!    comparing plain velocity Verlet against 4-step multiple timestepping.
//!
//! ```sh
//! cargo run --release --example full_electrostatics
//! ```

use namd_repro::mdcore::prelude::*;
use namd_repro::pme::ewald::{ewald_direct, EwaldParams};
use namd_repro::pme::md::MtsSimulator;

fn madelung() {
    // 2×2×2 unit cells of NaCl.
    let a = 5.64_f64;
    let cell = Cell::cube(2.0 * a);
    let mut pos = Vec::new();
    let mut q = Vec::new();
    for ix in 0..4 {
        for iy in 0..4 {
            for iz in 0..4 {
                pos.push(Vec3::new(ix as f64, iy as f64, iz as f64) * (a / 2.0));
                q.push(if (ix + iy + iz) % 2 == 0 { 1.0 } else { -1.0 });
            }
        }
    }
    let ex = Exclusions::none(pos.len());
    let params = EwaldParams::auto(&cell, 5.6, 1e-8);
    let mut f = vec![Vec3::ZERO; pos.len()];
    let e = ewald_direct(&cell, &pos, &q, &ex, &params, &mut f);
    let per_ion = e.total() / pos.len() as f64;
    // E/ion = −M·C/(2·r_nn)
    let m = -per_ion * 2.0 * (a / 2.0) / units::COULOMB;
    println!("NaCl Madelung constant: computed {m:.6}, literature 1.747565");
}

fn dynamics() {
    // A small water box in Ewald mode.
    let beta = 0.35;
    let mut system = namd_repro::molgen::SystemBuilder::new(namd_repro::molgen::SystemSpec {
        name: "pme-demo",
        box_lengths: Vec3::new(24.0, 24.0, 24.0),
        target_atoms: 1_200,
        protein_chains: 0,
        protein_chain_len: 0,
        lipid_slab: None,
        cutoff: 9.0,
        seed: 4,
    })
    .build();
    system.forcefield = system.forcefield.clone().with_ewald(beta);
    system.thermalize(300.0, 4);

    println!("\n{} atoms, Ewald β = {beta}, cutoff 9 Å", system.n_atoms());
    for (label, dt, k) in [("velocity Verlet (PME every step)", 0.5, 1), ("r-RESPA MTS (PME every 4th)", 0.5, 4)] {
        let mut sys = system.clone();
        let mut sim = MtsSimulator::new(&sys, 1.0, dt, k);
        println!("\n{label}: mesh {:?}", sim.full.mesh());
        let start = std::time::Instant::now();
        let energies = sim.run(&mut sys, 20);
        let wall = start.elapsed();
        let e0 = energies[1].total();
        let e1 = energies.last().unwrap().total();
        let last = energies.last().unwrap();
        println!(
            "  E components: bonded {:.1}  LJ {:.1}  elec(real {:.1} + recip {:.1} + corr {:.1})",
            last.bonded, last.lj, last.elec_real, last.elec_recip, last.elec_corr
        );
        println!(
            "  drift over 20 outer steps: {:.2e} relative   ({wall:.2?} wall)",
            (e1 - e0).abs() / e0.abs()
        );
    }
}

fn main() {
    madelung();
    dynamics();
}
