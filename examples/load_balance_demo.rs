//! The measurement-based load-balancing story of §3.2, made visible.
//!
//! A deliberately heterogeneous system (a dense lipid slab through a water
//! box) is run on 64 virtual PEs. The demo prints what each stage of the
//! pipeline does: the initial static (RCB + upstream) placement, the greedy
//! remap, and the refinement pass — step time, max/avg imbalance, migrations
//! and proxy counts at every stage, plus a comparison with the ablation
//! strategies.
//!
//! ```sh
//! cargo run --release --example load_balance_demo
//! ```

use namd_repro::lb;
use namd_repro::mdcore::prelude::Vec3;
use namd_repro::namd_core::prelude::*;

fn main() {
    // A slab system: the middle third of the box is ~30% denser than the
    // surrounding water, so spatial patches have very uneven loads.
    let system = namd_repro::molgen::SystemBuilder::new(namd_repro::molgen::SystemSpec {
        name: "slab-demo",
        box_lengths: Vec3::new(52.0, 52.0, 52.0),
        target_atoms: 12_000,
        protein_chains: 2,
        protein_chain_len: 80,
        lipid_slab: Some((18.0, 32.0)),
        cutoff: 10.0,
        seed: 7,
    })
    .build();
    let machine = namd_repro::machine::presets::asci_red();
    let n_pes = 64;

    let cfg = SimConfig::builder(n_pes, machine).steps_per_phase(3).build().unwrap();
    let mut engine = Engine::new(system.clone(), cfg);
    println!(
        "{} atoms in {} patches, {} compute objects, {n_pes} PEs\n",
        system.n_atoms(),
        engine.decomp().grid.n_patches(),
        engine.decomp().computes.len()
    );

    println!("stage                       ms/step   max/avg   proxies  migrated");
    let stage = |name: &str, r: &PhaseResult, eng: &Engine, moved: usize| {
        let loads = &r.stats.pe_busy;
        let avg: f64 = loads.iter().sum::<f64>() / loads.len() as f64;
        let max = loads.iter().copied().fold(0.0, f64::max);
        println!(
            "{name:<27} {:>7.2} {:>9.2} {:>9} {:>9}",
            r.time_per_step * 1e3,
            if avg > 0.0 { max / avg } else { 1.0 },
            eng.proxy_count(),
            moved
        );
    };

    // Stage 1: initial static placement.
    let r0 = engine.run_phase(3);
    stage("initial static (RCB)", &r0, &engine, 0);

    // Stage 2: greedy on measured loads.
    let (problem, map) = engine.lb_problem(&r0);
    let assignment = lb::greedy(&problem, lb::GreedyParams::default());
    let moved = engine.apply_assignment(&map, &assignment);
    let r1 = engine.run_phase(3);
    stage("greedy (measured loads)", &r1, &engine, moved);

    // Stage 3: refinement on re-measured loads.
    let (problem, map) = engine.lb_problem(&r1);
    let current: Vec<usize> = map.iter().map(|&j| engine.placement[j]).collect();
    let (refined, _) = lb::refine(&problem, &current, lb::RefineParams::default());
    let moved = engine.apply_assignment(&map, &refined);
    let r2 = engine.run_phase(3);
    stage("refine (re-measured)", &r2, &engine, moved);

    println!("\nfor contrast, the ablation strategies:");
    for (name, strat) in [
        ("random", LbStrategy::Random),
        ("round-robin", LbStrategy::RoundRobin),
        ("greedy, proxy-unaware", LbStrategy::GreedyNoProxy),
    ] {
        let cfg = SimConfig::builder(n_pes, machine).lb(strat).steps_per_phase(3).build().unwrap();
        let mut e = Engine::new(system.clone(), cfg);
        let run = e.run_benchmark();
        let r = run.phases.last().unwrap();
        stage(name, r, &e, 0);
    }
}
