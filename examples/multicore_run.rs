//! Real multicore execution: the same compute-object decomposition the DES
//! schedules, run by the engine's real-threads backend on this machine's
//! cores — the identical message-driven timestep protocol, in wall-clock
//! time.
//!
//! Measures wall-clock speedup of the force evaluation and checks NVE energy
//! conservation along the way — real physics, real parallelism.
//!
//! ```sh
//! cargo run --release --example multicore_run
//! ```

use namd_repro::namd_core::parallel::ParallelSim;

fn main() {
    // A bR-scale system: big enough to parallelize, small enough to be quick.
    let bench = namd_repro::molgen::br_like();
    let system = bench.build();
    println!("system: {} ({} atoms)", bench.name, system.n_atoms());

    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    println!("host cores: {max_threads}\n");

    // Wall-clock force-evaluation speedup.
    println!("threads   ms/force-eval   speedup");
    let mut t1 = 0.0;
    let mut threads = 1;
    while threads <= max_threads {
        let mut sim = ParallelSim::new(system.clone(), threads, 1.0).unwrap();
        // Warm up, then time several evaluations.
        sim.compute_forces();
        let reps = 5;
        let start = std::time::Instant::now();
        for _ in 0..reps {
            sim.compute_forces();
        }
        let per = start.elapsed().as_secs_f64() / reps as f64;
        if threads == 1 {
            t1 = per;
        }
        println!("{threads:>7} {:>15.2} {:>9.2}x", per * 1e3, t1 / per);
        threads *= 2;
    }

    // NVE dynamics on all cores with atom migration.
    println!("\nNVE dynamics on {max_threads} threads (0.5 fs, 30 steps):");
    let mut sys = system;
    sys.thermalize(300.0, 1);
    let mut sim = ParallelSim::new(sys, max_threads, 0.5).unwrap();
    sim.migrate_every = 10;
    let energies = sim.run(30);
    let e0 = energies[2].total();
    let e1 = energies.last().unwrap().total();
    println!("  E(start) = {e0:.2} kcal/mol");
    println!("  E(end)   = {e1:.2} kcal/mol");
    println!("  drift    = {:.3e} (relative)", (e1 - e0).abs() / e0.abs());
}
