//! Quickstart: build a small solvated system, run real sequential MD, then
//! run the same system through the parallel engine on 8 virtual processors.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use namd_repro::mdcore::prelude::*;
use namd_repro::namd_core::prelude::*;

fn main() {
    // 1. A 3,000-atom water box with one protein-like chain.
    let mut system = namd_repro::molgen::SystemBuilder::new(namd_repro::molgen::SystemSpec {
        name: "quickstart",
        box_lengths: Vec3::new(34.0, 34.0, 34.0),
        target_atoms: 3_000,
        protein_chains: 1,
        protein_chain_len: 48,
        lipid_slab: None,
        cutoff: 8.0,
        seed: 42,
    })
    .build();
    system.thermalize(300.0, 42);
    println!(
        "built {} atoms, {} bonds, {} angles, {} dihedrals",
        system.n_atoms(),
        system.topology.bonds.len(),
        system.topology.angles.len(),
        system.topology.dihedrals.len()
    );

    // 2. Sequential NVE dynamics: velocity Verlet at 1 fs.
    let mut sim = Simulator::new(&system, 1.0);
    println!("\nsequential MD (10 steps):");
    println!("step   potential       kinetic         total        temp(K)");
    for step in 0..10 {
        let e = sim.step(&mut system);
        println!(
            "{step:>4} {:>12.2} {:>12.2} {:>12.2} {:>10.1}",
            e.potential(),
            e.kinetic,
            e.total(),
            system.temperature()
        );
    }

    // 3. The same system on the parallel engine: 8 virtual PEs of an
    //    ASCI-Red-class machine, full measurement-based load balancing.
    let machine = namd_repro::machine::presets::asci_red();
    let config = SimConfig::new(8, machine);
    let mut engine = Engine::new(system, config);
    println!(
        "\nparallel decomposition: {} patches, {} compute objects",
        engine.decomp().grid.n_patches(),
        engine.decomp().computes.len()
    );
    let run = engine.run_benchmark();
    println!("load-balancing pipeline:");
    for (i, phase) in run.phases.iter().enumerate() {
        println!(
            "  phase {i}: {:.2} ms/step (imbalance max-avg {:.2} ms)",
            phase.time_per_step * 1e3,
            phase.stats.imbalance() / phase.n_steps as f64 * 1e3
        );
    }
    println!(
        "speedup on 8 virtual PEs: {:.1}x",
        engine.decomp().ideal_step_time(&machine) / run.final_time_per_step()
    );
}
