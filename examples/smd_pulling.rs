//! Steered molecular dynamics: drag one end of the protein chain with a
//! moving spring (the classic NAMD-era experiment) while the other end is
//! pinned, recording the accumulated pulling work, then report the system
//! pressure before and after.
//!
//! ```sh
//! cargo run --release --example smd_pulling
//! ```

use namd_repro::mdcore::observables::instantaneous_pressure;
use namd_repro::mdcore::prelude::*;
use namd_repro::mdcore::smd::{SmdSimulator, SmdSpring};

fn main() {
    // A small solvated chain; the first atom is pinned, the last is pulled.
    let mut system = namd_repro::molgen::SystemBuilder::new(namd_repro::molgen::SystemSpec {
        name: "smd",
        box_lengths: Vec3::new(34.0, 34.0, 34.0),
        target_atoms: 2_400,
        protein_chains: 1,
        protein_chain_len: 60,
        lipid_slab: None,
        cutoff: 8.0,
        seed: 12,
    })
    .build();
    system.thermalize(200.0, 12);
    let chain_len = 60;
    system.topology.restraints.push(Restraint {
        atom: 0,
        k: 10.0,
        target: system.positions[0],
    });

    let p0 = instantaneous_pressure(&system);
    println!(
        "{} atoms; pinning atom 0, pulling atom {} at 10 Å/ps",
        system.n_atoms(),
        chain_len - 1
    );

    let pulled = (chain_len - 1) as u32;
    let spring = SmdSpring {
        atom: pulled,
        k: 7.0,
        velocity: Vec3::new(0.01, 0.0, 0.0), // 10 Å/ps
        anchor: system.positions[pulled as usize],
    };
    let start = system.positions[pulled as usize];
    let mut smd = SmdSimulator::new(&system, 1.0, vec![spring]);

    println!("\n  t(ps)   extension(Å)   work(kcal/mol)");
    for block in 1..=8 {
        smd.run(&mut system, 250); // 0.25 ps per block
        let ext = system.cell.min_image(system.positions[pulled as usize], start).norm();
        println!(
            "{:>7.2} {:>14.2} {:>16.2}",
            block as f64 * 0.25,
            ext,
            smd.work[0]
        );
    }

    let p1 = instantaneous_pressure(&system);
    println!(
        "\npressure: {:.1} atm before, {:.1} atm after pulling",
        p0 * namd_repro::mdcore::observables::PRESSURE_ATM_PER_KCAL_MOL_A3,
        p1 * namd_repro::mdcore::observables::PRESSURE_ATM_PER_KCAL_MOL_A3
    );
    println!("total pulling work: {:.2} kcal/mol over {:.1} Å of anchor travel", smd.work[0], 0.01 * 2000.0);
}
