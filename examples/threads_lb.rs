//! Measurement-based load balancing on the real-threads backend.
//!
//! Places every migratable compute object on worker 0, runs a measurement
//! phase (real force kernels, wall-clock handler timings), then lets the
//! paper's greedy strategy redistribute the objects from those measured
//! loads — the same measure → balance cycle the DES models, executed on
//! actual OS threads.
//!
//! ```sh
//! cargo run --release --example threads_lb
//! ```

use namd_repro::lb;
use namd_repro::namd_core::prelude::*;

fn imbalance(pe_busy: &[f64]) -> f64 {
    let max = pe_busy.iter().cloned().fold(0.0f64, f64::max);
    let avg = pe_busy.iter().sum::<f64>() / pe_busy.len() as f64;
    max / avg.max(1e-12)
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    let n_pes = cores.clamp(2, 8);

    let bench = namd_repro::molgen::br_like();
    let mut sys = bench.build();
    sys.thermalize(300.0, 1);
    println!("system: {} ({} atoms), {n_pes} worker threads", bench.name, sys.n_atoms());

    let cfg = SimConfig::builder(n_pes, namd_repro::machine::presets::generic_cluster())
        .force_mode(ForceMode::Real)
        .backend(Backend::Threads)
        .build()
        .unwrap();
    let mut engine = Engine::new(sys, cfg);

    // Sabotage the placement: all migratable computes on worker 0.
    for j in 0..engine.decomp().computes.len() {
        if engine.decomp().computes[j].migratable {
            engine.placement[j] = 0;
        }
    }

    println!("\nphase 1: everything on worker 0 (measurement window)");
    let before = engine.run_phase(3);
    println!("  step time  {:>8.2} ms", before.time_per_step * 1e3);
    println!("  imbalance  {:>8.2}x (max/avg busy)", imbalance(&before.stats.pe_busy));

    let (problem, map) = engine.lb_problem(&before);
    let assignment = lb::greedy(&problem, lb::GreedyParams::default());
    let moved = engine.apply_assignment(&map, &assignment);
    println!("\ngreedy on measured wall-clock loads: moved {moved} of {} computes", map.len());

    println!("\nphase 2: balanced placement");
    let after = engine.run_phase(3);
    println!("  step time  {:>8.2} ms", after.time_per_step * 1e3);
    println!("  imbalance  {:>8.2}x (max/avg busy)", imbalance(&after.stats.pe_busy));
    println!(
        "\nspeedup from one LB cycle: {:.2}x",
        before.time_per_step / after.time_per_step
    );
}
