//! Tour of the three instrumentation levels of §4.1:
//!
//! 1. per-step wall time,
//! 2. summary profiles (per-entry-method times),
//! 3. full Projections-style traces (grainsize histograms, timelines,
//!    per-PE utilization).
//!
//! ```sh
//! cargo run --release --example trace_explorer
//! ```

use namd_repro::namd_core::prelude::*;

fn main() {
    let bench = namd_repro::molgen::apoa1_like().scaled(0.05);
    let system = bench.build();
    let machine = namd_repro::machine::presets::asci_red();
    let n_pes = 64;

    let cfg = SimConfig::builder(n_pes, machine)
        .tracing(true)
        .steps_per_phase(4)
        .build()
        .unwrap();
    let mut engine = Engine::new(system, cfg);
    let run = engine.run_benchmark();
    let phase = run.phases.last().unwrap();

    // Level 1: step times.
    println!("level 1 — step time: {:.2} ms/step on {n_pes} PEs\n", phase.time_per_step * 1e3);

    // Level 2: summary profile.
    println!("level 2 — summary profile:");
    print!("{}", phase.stats.entry_table());

    // Level 3: the full trace.
    let trace = phase.trace.as_ref().expect("tracing enabled");
    let e = phase.entries;

    println!("\nlevel 3a — non-bonded grainsize histogram (per average step):");
    let h = trace.grainsize_histogram(
        &e.nonbonded(),
        0.0,
        phase.total_time,
        0.001,
        phase.n_steps as f64,
    );
    print!("{}", h.render(50));

    println!("\nlevel 3b — timeline of one step on PEs 0-7:");
    println!("glyphs: I=integrate N=nonbonded b=bonded p=proxy/receive .=idle");
    let t0 = phase.total_time * 0.3;
    let classify = move |entry: charmrt::EntryId| -> char {
        if entry == e.integrate {
            'I'
        } else if entry == e.exec_self || entry == e.exec_pair {
            'N'
        } else if entry == e.exec_bonded || entry == e.exec_bonded_inter {
            'b'
        } else {
            'p'
        }
    };
    let pes: Vec<usize> = (0..8).collect();
    print!("{}", trace.render_timeline(&pes, t0, t0 + phase.time_per_step, 90, classify));

    // Projections-style export for external tooling.
    let out = std::env::temp_dir().join("namd_trace.jsonl");
    let mut file = std::fs::File::create(&out).expect("create trace file");
    trace
        .export_jsonl(&phase.stats.entry_names, &mut file)
        .expect("write trace");
    println!("\n(full trace exported to {} — {} events)", out.display(), trace.events.len());

    println!("\nlevel 3c — per-PE utilization over the phase:");
    for pe in 0..8 {
        let u = trace.pe_utilization(pe, 0.0, phase.total_time);
        let bar = "#".repeat((u * 40.0).round() as usize);
        println!("PE {pe}: {bar} {:.0}%", u * 100.0);
    }
}
