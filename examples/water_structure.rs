//! Liquid-structure analysis: equilibrate a water box with the Langevin
//! thermostat, then compute the O-O radial distribution function, the mean
//! squared displacement (→ self-diffusion coefficient), and the velocity
//! autocorrelation function from the trajectory.
//!
//! ```sh
//! cargo run --release --example water_structure
//! ```

use namd_repro::mdcore::prelude::*;
use namd_repro::mdcore::thermostat::Langevin;

fn main() {
    // 256 waters in a 20 Å box (≈ liquid density).
    let mut system = namd_repro::molgen::SystemBuilder::new(namd_repro::molgen::SystemSpec {
        name: "water-structure",
        box_lengths: Vec3::splat(19.7),
        target_atoms: 768,
        protein_chains: 0,
        protein_chain_len: 0,
        lipid_slab: None,
        cutoff: 9.0,
        seed: 20,
    })
    .build();
    println!("{} atoms ({} waters)", system.n_atoms(), system.n_atoms() / 3);

    // Relax the lattice, then equilibrate at 300 K.
    let r = minimize(&mut system, 200, 10.0);
    println!("minimized: {:.0} -> {:.0} kcal/mol", r.e_initial, r.e_final);
    let mut lang = Langevin::new(&system, 300.0, 0.01, 1.0, 20);
    lang.run(&mut system, 1500);
    println!("equilibrated at {:.0} K", system.temperature());

    // Production: collect frames every 10 fs.
    let mut pos_frames = Vec::new();
    let mut vel_frames = Vec::new();
    for _ in 0..120 {
        lang.run(&mut system, 10);
        pos_frames.push(system.positions.clone());
        vel_frames.push(system.velocities.clone());
    }

    // O-O radial distribution function.
    let oxygens: Vec<u32> = (0..system.n_atoms() as u32).step_by(3).collect();
    let (r, g) = radial_distribution(&system.cell, &pos_frames, &oxygens, &oxygens, 8.0, 40);
    println!("\nO-O g(r):");
    let peak = g
        .iter()
        .zip(&r)
        .max_by(|a, b| a.0.partial_cmp(b.0).unwrap())
        .map(|(g, r)| (*r, *g))
        .unwrap();
    for (ri, gi) in r.iter().zip(&g).step_by(2) {
        let bar = "#".repeat((gi * 18.0).round() as usize);
        println!("{ri:>5.2} Å | {bar} {gi:.2}");
    }
    println!(
        "first peak at {:.2} Å (g = {:.2}); experimental water: ~2.8 Å",
        peak.0, peak.1
    );

    // Diffusion from the MSD (frames every 10 fs).
    let msd = mean_squared_displacement(&system.cell, &pos_frames);
    let d = diffusion_coefficient(&msd, 10.0);
    // Å²/fs → 10⁻⁵ cm²/s: 1 Å²/fs = 1e-16 cm² / 1e-15 s = 0.1 cm²/s.
    println!(
        "\nMSD after {:.1} ps: {:.2} Å² → D ≈ {:.2e} cm²/s (experimental ~2.3e-5)",
        pos_frames.len() as f64 * 0.01,
        msd.last().unwrap(),
        d * 0.1
    );

    // Velocity decorrelation.
    let vacf = velocity_autocorrelation(&vel_frames, 8);
    println!("\nVACF (10 fs lags): {:?}", vacf.iter().map(|c| (c * 100.0).round() / 100.0).collect::<Vec<_>>());
}
