#!/usr/bin/env bash
# Tier-1 gate: release build + full test suite must pass (blocking);
# clippy and rustfmt are advisory (non-blocking) so style churn never
# masks a real regression.
set -uo pipefail
cd "$(dirname "$0")/.."

status=0

echo "==> cargo build --release"
cargo build --release || status=1

echo "==> cargo test -q"
cargo test -q || status=1

echo "==> cargo clippy (non-blocking)"
if ! cargo clippy --workspace --all-targets -- -D warnings; then
  echo "WARNING: clippy reported lints (non-blocking)"
fi

echo "==> cargo fmt --check (non-blocking)"
if ! cargo fmt --all -- --check; then
  echo "WARNING: rustfmt would reformat files (non-blocking)"
fi

if [ "$status" -ne 0 ]; then
  echo "tier1: FAILED (build or tests)"
else
  echo "tier1: OK"
fi
exit "$status"
