#!/usr/bin/env bash
# Tier-1 gate: release build + full test suite must pass (blocking);
# clippy and rustfmt are advisory (non-blocking) so style churn never
# masks a real regression.
set -uo pipefail
cd "$(dirname "$0")/.."

status=0

echo "==> cargo build --release"
cargo build --release || status=1

echo "==> cargo test -q"
cargo test -q || status=1

# Bounded schedule-fuzz soak: more seeds × policies than the default run,
# still deterministic (cases are seeded per test name + index). Blocking —
# an invariant-oracle violation here is a real runtime bug.
echo "==> schedule fuzz soak (SCHEDULE_FUZZ_CASES=25)"
SCHEDULE_FUZZ_CASES=25 cargo test -q --test schedule_fuzz || status=1

# Checkpoint → PE-kill → recover round trip at the soak case count.
# Blocking — a recovered run that is not bit-identical to the clean run
# breaks the restart guarantee.
echo "==> checkpoint kill/recover soak (SCHEDULE_FUZZ_CASES=25)"
SCHEDULE_FUZZ_CASES=25 cargo test -q --test checkpoint_restart || status=1

# Proc backend: real OS processes over Unix sockets must stay bit-identical
# to DES/threads (equivalence tests + the seeds × PE-counts fuzz group), and
# a SIGKILLed worker must recover through checkpoints. Blocking.
echo "==> proc backend equivalence + fuzz (SCHEDULE_FUZZ_CASES=25)"
SCHEDULE_FUZZ_CASES=25 cargo test -q --test proc_backend || status=1

# Scenario-zoo LB stress at a reduced scenario count (the zoo is ordered
# most-stressing first, so the reduced run keeps the hot-spot and droplet
# scenarios). Blocking — a blown imbalance budget or oracle violation on
# the deterministic DES backend is a real LB regression; the full matrix
# runs in CI.
echo "==> scenario-zoo LB stress (SCENARIO_STRESS_CASES=3)"
SCENARIO_STRESS_CASES=3 cargo test -q --test scenario_stress || status=1

echo "==> cargo clippy (non-blocking)"
if ! cargo clippy --workspace --all-targets -- -D warnings; then
  echo "WARNING: clippy reported lints (non-blocking)"
fi

echo "==> cargo fmt --check (non-blocking)"
if ! cargo fmt --all -- --check; then
  echo "WARNING: rustfmt would reformat files (non-blocking)"
fi

if [ "$status" -ne 0 ]; then
  echo "tier1: FAILED (build or tests)"
else
  echo "tier1: OK"
fi
exit "$status"
