//! Umbrella crate for the NAMD SC2000 reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency root.
// Clippy: indexed loops are kept where they mirror the mathematical
// notation of the kernels and the per-axis geometry code, and chare/builder
// constructors take positional wiring arguments by design.
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]
#![allow(clippy::field_reassign_with_default)]
pub use charmrt;
pub use ckpt;
pub use lb;
pub use machine;
pub use mdcore;
pub use molgen;
pub use namd_core;
pub use pme;
