//! Backend-equivalence satellites for the unified Runtime layer:
//!
//! * the real-threads backend reproduces the sequential reference on an
//!   apoa1-like system with positional restraints and under both
//!   thermostats;
//! * the DES and threads backends build identical compute-object sets and
//!   each yields a valid greedy load-balancing assignment from its own
//!   (modeled vs measured) loads;
//! * on the threads backend, one measure → greedy cycle repairs a
//!   deliberately imbalanced placement using *measured wall-clock* loads.

use namd_repro::lb;
use namd_repro::mdcore::prelude::*;
use namd_repro::mdcore::thermostat::{Berendsen, Langevin};
use namd_repro::molgen;
use namd_repro::namd_core::parallel::ParallelSim;
use namd_repro::namd_core::prelude::*;

/// A small apoa1-like membrane+protein system with protein restraints,
/// evolved a few steps so the restraints are strained (at the build
/// configuration their energy is exactly zero).
fn restrained_apoa1_small() -> System {
    let bench = molgen::apoa1_like().scaled(0.04);
    let mut sys = molgen::SystemBuilder::new(bench.spec().clone()).build_restrained();
    sys.thermalize(300.0, 11);
    let mut sim = Simulator::new(&sys, 1.0);
    for _ in 0..5 {
        sim.step(&mut sys);
    }
    sys
}

#[test]
fn threads_forces_match_sequential_with_restraints() {
    let sys = restrained_apoa1_small();
    assert!(!sys.topology.restraints.is_empty(), "system must carry restraints");

    let mut f_seq = vec![Vec3::ZERO; sys.n_atoms()];
    let e_seq = namd_repro::mdcore::sim::compute_forces(&sys, &mut f_seq);

    let mut par = ParallelSim::new(sys, 2, 1.0).unwrap();
    let acc = par.compute_forces();

    let tol = 1e-8 * e_seq.potential().abs().max(1.0);
    assert!(
        (acc.potential() - e_seq.potential()).abs() < tol,
        "potential: threads {} vs sequential {}",
        acc.potential(),
        e_seq.potential()
    );
    assert!(
        (acc.e_restraint - e_seq.bonded.restraint).abs() < 1e-8 * e_seq.bonded.restraint.abs().max(1.0),
        "restraint energy: threads {} vs sequential {}",
        acc.e_restraint,
        e_seq.bonded.restraint
    );
    assert!(acc.e_restraint > 0.0, "thermalized system should strain its restraints");
    for (i, (fp, fs)) in par.forces().iter().zip(&f_seq).enumerate() {
        let d = (*fp - *fs).norm();
        assert!(d < 1e-9 * (1.0 + fs.norm()), "atom {i} force differs by {d}");
    }
}

#[test]
fn threads_trajectory_matches_sequential_under_berendsen() {
    let sys = restrained_apoa1_small();
    let berendsen = Berendsen { target_k: 300.0, tau_fs: 100.0 };

    let mut seq = sys.clone();
    let mut sim = Simulator::new(&seq, 0.5);
    let mut par = ParallelSim::new(sys, 2, 0.5).unwrap();
    par.migrate_every = 1000; // keep the decomposition fixed, like the reference

    for step in 0..6 {
        let e_seq = sim.step(&mut seq);
        berendsen.apply(&mut seq, 0.5);
        let e_par = par.step();
        berendsen.apply(&mut par.system_mut(), 0.5);
        let tol = 1e-7 * e_seq.total().abs().max(1.0);
        assert!(
            (e_par.total() - e_seq.total()).abs() < tol,
            "step {step} energy: threads {} vs sequential {}",
            e_par.total(),
            e_seq.total()
        );
    }
    let par_sys = par.system();
    for i in (0..seq.positions.len()).step_by(23) {
        let d = (par_sys.positions[i] - seq.positions[i]).norm();
        assert!(d < 1e-6, "atom {i} diverged by {d} under Berendsen");
    }
}

#[test]
fn threads_forces_match_along_a_langevin_trajectory() {
    // Langevin's integrator owns the RNG, so the two backends cannot be
    // co-stepped; instead sample configurations along a sequential Langevin
    // trajectory and check the threads backend reproduces the forces (and
    // the restraint energy) at each.
    let mut sys = restrained_apoa1_small();
    let mut langevin = Langevin::new(&sys, 300.0, 0.05, 1.0, 7);

    for sample in 0..3 {
        for _ in 0..4 {
            langevin.step(&mut sys);
        }
        let mut f_seq = vec![Vec3::ZERO; sys.n_atoms()];
        let e_seq = namd_repro::mdcore::sim::compute_forces(&sys, &mut f_seq);

        let mut par = ParallelSim::new(sys.clone(), 2, 1.0).unwrap();
        let acc = par.compute_forces();
        let tol = 1e-8 * e_seq.potential().abs().max(1.0);
        assert!(
            (acc.potential() - e_seq.potential()).abs() < tol,
            "sample {sample}: threads {} vs sequential {}",
            acc.potential(),
            e_seq.potential()
        );
        for (i, (fp, fs)) in par.forces().iter().zip(&f_seq).enumerate() {
            let d = (*fp - *fs).norm();
            assert!(d < 1e-9 * (1.0 + fs.norm()), "sample {sample} atom {i} differs by {d}");
        }
    }
}

fn real_mode_config(n_pes: usize, backend: Backend) -> SimConfig {
    SimConfig::builder(n_pes, namd_repro::machine::presets::generic_cluster())
        .force_mode(ForceMode::Real)
        .backend(backend)
        .build()
        .expect("valid test config")
}

#[test]
fn des_and_threads_build_identical_compute_sets_and_valid_assignments() {
    let sys = restrained_apoa1_small();
    let mut des = Engine::new(sys.clone(), real_mode_config(4, Backend::Des));
    let mut thr = Engine::new(sys, real_mode_config(4, Backend::Threads));

    // Identical compute-object sets: same kinds, patch lists, split ranges,
    // and migratability, in the same order.
    let dc = &des.decomp().computes;
    let tc = &thr.decomp().computes;
    assert_eq!(dc.len(), tc.len(), "compute-object counts differ");
    for (j, (a, b)) in dc.iter().zip(tc.iter()).enumerate() {
        assert_eq!(a.kind, b.kind, "compute {j} kind differs");
        assert_eq!(a.patches, b.patches, "compute {j} patches differ");
        assert_eq!(a.outer, b.outer, "compute {j} split range differs");
        assert_eq!(a.migratable, b.migratable, "compute {j} migratability differs");
    }
    assert_eq!(des.placement, thr.placement, "static placements differ");

    // Each backend measures its own loads (modeled vs wall-clock) and the
    // greedy strategy produces a complete, in-range assignment from both.
    for (name, engine) in [("des", &mut des), ("threads", &mut thr)] {
        let r = engine.run_phase(2);
        let (problem, map) = engine.lb_problem(&r);
        assert_eq!(problem.computes.len(), map.len());
        assert!(
            problem.computes.iter().map(|c| c.load).sum::<f64>() > 0.0,
            "{name}: measured migratable load must be positive"
        );
        let assignment = lb::greedy(&problem, lb::GreedyParams::default());
        assert_eq!(assignment.len(), map.len(), "{name}: assignment incomplete");
        assert!(
            assignment.iter().all(|&pe| pe < engine.config.n_pes),
            "{name}: assignment out of PE range"
        );
        let moved = engine.apply_assignment(&map, &assignment);
        assert!(moved <= map.len());
    }
}

#[test]
fn measured_loads_repair_an_imbalanced_placement_on_threads() {
    let sys = restrained_apoa1_small();
    let mut engine = Engine::new(sys, real_mode_config(2, Backend::Threads));

    // Deliberately pile every migratable compute onto PE 0.
    let migratable: Vec<usize> = engine
        .decomp()
        .computes
        .iter()
        .enumerate()
        .filter_map(|(j, c)| c.migratable.then_some(j))
        .collect();
    for &j in &migratable {
        engine.placement[j] = 0;
    }
    let placement = engine.placement.clone();
    let imbalanced = engine.run_phase(3);

    let imbalance = |stats: &namd_repro::charmrt::SummaryStats| {
        let max = stats.pe_busy.iter().cloned().fold(0.0f64, f64::max);
        let avg = stats.pe_busy.iter().sum::<f64>() / stats.pe_busy.len() as f64;
        max / avg.max(1e-12)
    };
    let before = imbalance(&imbalanced.stats);

    // One measure → greedy cycle on the wall-clock loads.
    let (problem, map) = engine.lb_problem(&imbalanced);
    let assignment = lb::greedy(&problem, lb::GreedyParams::default());
    let moved = engine.apply_assignment(&map, &assignment);
    assert!(moved > 0, "greedy should move computes off the overloaded PE");
    assert_ne!(placement, engine.placement);

    let balanced = engine.run_phase(3);
    let after = imbalance(&balanced.stats);
    assert!(
        after < before,
        "measured imbalance should drop: {before:.3} -> {after:.3}"
    );

    // With real parallel hardware the balanced placement is also faster in
    // wall-clock terms; on a single-core runner the two placements tie, so
    // only assert the speedup when a second core exists.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores >= 2 {
        assert!(
            balanced.time_per_step < imbalanced.time_per_step,
            "balanced step time {:.6}s should beat imbalanced {:.6}s",
            balanced.time_per_step,
            imbalanced.time_per_step
        );
    }
}
