//! Checkpoint/restart acceptance tests (ISSUE 4):
//!
//! * crash-recovery round trip: a PE-kill fault at a fuzzed message
//!   occurrence, under each `SchedulePolicy`, on both backends — the
//!   recovered run's positions *and* velocities must be bit-identical to
//!   an uninterrupted run at the same seed and schedule policy;
//! * the same trajectory is bit-identical across the DES and threads
//!   backends (the sorted force fold makes per-step forces pure functions
//!   of positions + decomposition, independent of delivery order);
//! * mismatched-topology and mismatched-config snapshots are refused with
//!   descriptive errors, as are corrupted snapshot files.
//!
//! Case count for the fuzz group comes from `SCHEDULE_FUZZ_CASES`
//! (default 6; CI's soak job runs 25).

use namd_repro::charmrt::{FaultPlan, SchedulePolicy};
use namd_repro::ckpt;
use namd_repro::mdcore::prelude::*;
use namd_repro::molgen;
use namd_repro::namd_core::prelude::*;
use proptest::prelude::*;
use std::sync::OnceLock;

fn fuzz_cases() -> u32 {
    std::env::var("SCHEDULE_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
}

const TOTAL_UPDATES: usize = 8;
const INTERVAL: usize = 4;

fn small_system() -> System {
    static SYS: OnceLock<System> = OnceLock::new();
    SYS.get_or_init(|| {
        let mut sys = molgen::SystemBuilder::new(molgen::SystemSpec {
            name: "ckpt-test",
            box_lengths: Vec3::new(28.0, 28.0, 28.0),
            target_atoms: 900,
            protein_chains: 1,
            protein_chain_len: 24,
            lipid_slab: None,
            cutoff: 8.0,
            seed: 13,
        })
        .build();
        sys.thermalize(200.0, 13);
        sys
    })
    .clone()
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "namd-ckpt-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&path);
    path
}

fn make_engine(backend: Backend, policy: SchedulePolicy, dir: &std::path::Path) -> Engine {
    let cfg = SimConfig::builder(2, namd_repro::machine::presets::generic_cluster())
        .force_mode(ForceMode::Real)
        .backend(backend)
        .dt_fs(1.0)
        .schedule(policy)
        .checkpoint(dir, INTERVAL)
        .build()
        .expect("valid test config");
    Engine::new(small_system(), cfg)
}

fn final_bits(engine: &Engine) -> Vec<(u64, u64, u64, u64, u64, u64)> {
    let st = engine.shared.state.read().unwrap();
    st.system
        .positions
        .iter()
        .zip(&st.system.velocities)
        .map(|(x, v)| {
            (x.x.to_bits(), x.y.to_bits(), x.z.to_bits(), v.x.to_bits(), v.y.to_bits(), v.z.to_bits())
        })
        .collect()
}

/// Run to [`TOTAL_UPDATES`] through the recovery driver — with or without
/// a kill in the fault plan — and return the final state bits plus the
/// number of recoveries performed.
fn run_to_end(
    backend: Backend,
    policy: SchedulePolicy,
    kill: Option<FaultPlan>,
    tag: &str,
) -> (Vec<(u64, u64, u64, u64, u64, u64)>, u32) {
    let dir = tempdir(tag);
    let mut engine = make_engine(backend, policy, &dir);
    engine.config.fault_plan = kill;
    let report = run_with_recovery(&mut engine, TOTAL_UPDATES, &RecoveryPolicy::default())
        .expect("run_with_recovery failed");
    assert_eq!(report.updates, TOTAL_UPDATES);
    let bits = final_bits(&engine);
    let _ = std::fs::remove_dir_all(&dir);
    (bits, report.recoveries)
}

fn check_killed_run_matches_reference(
    backend: Backend,
    policy: SchedulePolicy,
    kill_skip: u64,
) -> Result<(), String> {
    let label = format!("{backend:?}-{:?}-{}-{kill_skip}", policy.kind, policy.seed);
    let (reference, r0) = run_to_end(backend, policy, None, &format!("ref-{label}"));
    if r0 != 0 {
        return Err(format!("[{label}] clean run reported {r0} recoveries"));
    }
    let plan = FaultPlan::parse(&format!(
        "kill:entry=PatchRecvForces:dst=1:skip={kill_skip}"
    ))
    .expect("valid plan");
    let (killed, recoveries) =
        run_to_end(backend, policy, Some(plan), &format!("kill-{label}"));
    if recoveries == 0 {
        return Err(format!(
            "[{label}] the kill never fired — widen the skip range"
        ));
    }
    if reference != killed {
        let first = reference
            .iter()
            .zip(&killed)
            .position(|(a, b)| a != b)
            .unwrap();
        return Err(format!(
            "[{label}] recovered trajectory diverged from the uninterrupted \
             one (first differing atom: {first})"
        ));
    }
    Ok(())
}

fn arb_case() -> impl Strategy<Value = (SchedulePolicy, u64, bool)> {
    // (schedule policy, kill occurrence, backend) — the vendored proptest
    // has no prop_oneof, so the policy is picked by index.
    (0usize..4, 0u64..u64::MAX, 0u64..60, 0u8..2).prop_map(
        |(which, seed, skip, threads)| {
            let name = ["fifo", "shuffle", "lifo", "jitter"][which];
            (SchedulePolicy::parse(name, seed).expect("known policy"), skip, threads == 1)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    #[test]
    fn killed_runs_recover_bit_identically(case in arb_case()) {
        let (policy, skip, threads) = case;
        let backend = if threads { Backend::Threads } else { Backend::Des };
        if let Err(msg) = check_killed_run_matches_reference(backend, policy, skip) {
            prop_assert!(false, "{}", msg);
        }
    }
}

#[test]
fn backends_agree_bit_for_bit() {
    let fifo = SchedulePolicy::default();
    let (des, _) = run_to_end(Backend::Des, fifo, None, "xbackend-des");
    let (thr, _) = run_to_end(Backend::Threads, fifo, None, "xbackend-thr");
    assert_eq!(des, thr, "DES and threads trajectories differ at the bit level");
}

#[test]
fn mismatched_snapshots_are_refused() {
    let dir = tempdir("refuse");
    let mut engine = make_engine(Backend::Des, SchedulePolicy::default(), &dir);
    run_with_recovery(&mut engine, INTERVAL, &RecoveryPolicy::default()).unwrap();
    let ckdir = ckpt::CheckpointDir::create(&dir).unwrap();
    let (snap, _) = ckdir.latest_valid().unwrap();

    // Different topology: same shape of config, different molecular system.
    let mut other_sys = molgen::SystemBuilder::new(molgen::SystemSpec {
        name: "ckpt-other",
        box_lengths: Vec3::new(28.0, 28.0, 28.0),
        target_atoms: 900,
        protein_chains: 2,
        protein_chain_len: 12,
        lipid_slab: None,
        cutoff: 8.0,
        seed: 14,
    })
    .build();
    other_sys.thermalize(200.0, 14);
    let cfg = SimConfig::builder(2, namd_repro::machine::presets::generic_cluster())
        .force_mode(ForceMode::Real)
        .dt_fs(1.0)
        .build()
        .unwrap();
    let mut other = Engine::new(other_sys, cfg);
    let err = other.restore(&snap).unwrap_err();
    assert!(
        matches!(err, ckpt::CkptError::TopologyMismatch { .. }),
        "expected TopologyMismatch, got {err}"
    );
    assert!(err.to_string().contains("topology hash"), "{err}");

    // Same topology, different run configuration (PE count, timestep).
    let cfg = SimConfig::builder(3, namd_repro::machine::presets::generic_cluster())
        .force_mode(ForceMode::Real)
        .dt_fs(1.0)
        .build()
        .unwrap();
    let mut wrong_pes = Engine::new(small_system(), cfg);
    let err = wrong_pes.restore(&snap).unwrap_err();
    assert!(
        matches!(err, ckpt::CkptError::ConfigMismatch(_)),
        "expected ConfigMismatch for n_pes, got {err}"
    );

    let cfg = SimConfig::builder(2, namd_repro::machine::presets::generic_cluster())
        .force_mode(ForceMode::Real)
        .dt_fs(0.5)
        .build()
        .unwrap();
    let mut wrong_dt = Engine::new(small_system(), cfg);
    let err = wrong_dt.restore(&snap).unwrap_err();
    assert!(
        matches!(err, ckpt::CkptError::ConfigMismatch(_)),
        "expected ConfigMismatch for dt, got {err}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_checkpoints_are_skipped_then_refused() {
    let dir = tempdir("corrupt");
    let mut engine = make_engine(Backend::Des, SchedulePolicy::default(), &dir);
    run_with_recovery(&mut engine, TOTAL_UPDATES, &RecoveryPolicy::default()).unwrap();
    let ckdir = ckpt::CheckpointDir::create(&dir).unwrap();

    // Corrupt the newest snapshot: latest_valid must fall back to the next
    // one instead of resuming from garbage.
    let newest = ckdir.file_for_step(TOTAL_UPDATES as u64);
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&newest, &bytes).unwrap();
    let (snap, path) = ckdir.latest_valid().unwrap();
    assert_eq!(snap.step, (TOTAL_UPDATES - INTERVAL) as u64);
    assert_ne!(path, newest);

    // With every snapshot corrupted (truncated to half its length),
    // recovery reports a descriptive error.
    for p in ckdir.list().unwrap() {
        let b = std::fs::read(&p).unwrap();
        std::fs::write(&p, &b[..b.len() / 2]).unwrap();
    }
    let err = ckdir.latest_valid().unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("checksum") || msg.contains("truncated") || msg.contains("corrupt"),
        "undescriptive error: {msg}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
