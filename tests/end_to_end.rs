//! End-to-end integration tests: generator → decomposition → runtime →
//! load balancer → measurements, across crate boundaries.

use namd_repro::machine::presets;
use namd_repro::mdcore::prelude::*;
use namd_repro::molgen::{SystemBuilder, SystemSpec};
use namd_repro::namd_core::prelude::*;

fn test_system(seed: u64) -> System {
    SystemBuilder::new(SystemSpec {
        name: "e2e",
        box_lengths: Vec3::new(42.0, 42.0, 42.0),
        target_atoms: 6_000,
        protein_chains: 1,
        protein_chain_len: 80,
        lipid_slab: Some((14.0, 24.0)),
        cutoff: 9.0,
        seed,
    })
    .build()
}

#[test]
fn full_pipeline_improves_with_lb_and_scale() {
    let sys = test_system(1);
    let machine = presets::asci_red();
    let decomp = build_decomposition(&sys, &SimConfig::new(1, machine));

    let mut last = f64::INFINITY;
    for pes in [1usize, 8, 32] {
        let cfg = SimConfig::builder(pes, machine).steps_per_phase(2).build().unwrap();
        let mut engine = Engine::with_decomposition(sys.clone(), decomp.clone(), cfg);
        let run = engine.run_benchmark();
        let t = run.final_time_per_step();
        assert!(t < last, "{pes} PEs not faster: {t} vs {last}");
        // LB never hurts the slab-imbalanced system.
        assert!(
            run.final_time_per_step() <= run.initial_time_per_step() * 1.02,
            "{pes} PEs: LB regressed {} -> {}",
            run.initial_time_per_step(),
            run.final_time_per_step()
        );
        last = t;
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run_once = || {
        let sys = test_system(7);
        let cfg = SimConfig::builder(16, presets::t3e_900()).steps_per_phase(2).build().unwrap();
        let mut engine = Engine::new(sys, cfg);
        let run = engine.run_benchmark();
        (
            run.final_time_per_step().to_bits(),
            run.migrations.clone(),
            engine.proxy_count(),
        )
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn machine_models_order_single_pe_times() {
    // Origin (112 MFLOPS) < T3E (64) < ASCI-Red (48) in step time.
    let sys = test_system(3);
    let time_on = |m: machine::MachineModel| {
        let cfg = SimConfig::builder(1, m).steps_per_phase(1).build().unwrap();
        let mut e = Engine::new(sys.clone(), cfg);
        e.run_phase(1).time_per_step
    };
    let asci = time_on(presets::asci_red());
    let t3e = time_on(presets::t3e_900());
    let origin = time_on(presets::origin2000());
    assert!(origin < t3e, "origin {origin} vs t3e {t3e}");
    assert!(t3e < asci, "t3e {t3e} vs asci {asci}");
}

#[test]
fn counted_and_real_modes_agree_on_structure() {
    // Same decomposition object counts; Real mode measures loads close to
    // what Counted mode models (the cost model is calibrated, not exact —
    // allow a factor of 2).
    let sys = test_system(5);
    let machine = presets::ideal();

    let cfg_counted = SimConfig::builder(4, machine).steps_per_phase(2).build().unwrap();
    let mut eng_counted = Engine::new(sys.clone(), cfg_counted);
    let rc = eng_counted.run_phase(2);

    let cfg_real = SimConfig::builder(4, machine)
        .force_mode(ForceMode::Real)
        .steps_per_phase(2)
        .build()
        .unwrap();
    let mut eng_real = Engine::new(sys, cfg_real);
    let rr = eng_real.run_phase(2);

    assert_eq!(rc.compute_loads.len(), rr.compute_loads.len());
    let sum_c: f64 = rc.compute_loads.iter().sum();
    let sum_r: f64 = rr.compute_loads.iter().sum();
    let ratio = sum_c / sum_r;
    assert!(
        (0.5..2.0).contains(&ratio),
        "counted {sum_c} vs real-measured {sum_r} loads diverge (ratio {ratio})"
    );
}

#[test]
fn audit_identity_holds_across_machines_and_scales() {
    let sys = test_system(9);
    for (machine, pes) in [
        (presets::asci_red(), 16),
        (presets::t3e_900(), 8),
        (presets::origin2000(), 32),
    ] {
        let cfg = SimConfig::builder(pes, machine).steps_per_phase(2).build().unwrap();
        let mut engine = Engine::new(sys.clone(), cfg);
        let r = engine.run_phase(2);
        let a = audit(engine.decomp(), &machine, &r, pes);
        let gap = (a.actual.component_sum() - a.actual.total).abs();
        assert!(
            gap <= 0.03 * a.actual.total,
            "{} @ {pes}: audit gap {gap} vs total {}",
            machine.name,
            a.actual.total
        );
        assert!(a.ideal.total <= a.actual.total * 1.001);
    }
}

#[test]
fn benchmark_systems_have_sane_initial_forces() {
    // The clash-avoiding generator must produce configurations whose maximum
    // force is integrable — no r⁻¹² blowups. (bR is small enough to check
    // exhaustively in a test.)
    let sys = namd_repro::molgen::br_like().build();
    let mut f = vec![Vec3::ZERO; sys.n_atoms()];
    let e = namd_repro::mdcore::sim::compute_forces(&sys, &mut f);
    assert!(e.potential().is_finite());
    let fmax = f.iter().map(|v| v.norm()).fold(0.0, f64::max);
    // The clash-avoider guarantees ≳1.9 Å separations; the worst-case LJ
    // force there is ~10⁴ kcal/mol/Å, which integrates stably at 0.5 fs.
    // A real r⁻¹² clash would be orders of magnitude beyond this bound.
    assert!(
        fmax < 2.0e4,
        "max force {fmax} kcal/mol/Å — generator produced a clash"
    );
    // Potential per atom in a physically plausible band.
    let per_atom = e.potential() / sys.n_atoms() as f64;
    assert!(per_atom.abs() < 100.0, "potential/atom {per_atom}");
}

#[test]
fn grainsize_rule_of_thumb() {
    // The conclusion's rule: aim at average grains well above the message
    // overhead. Check our default decomposition obeys it on ASCI-Red.
    let sys = test_system(11);
    let machine = presets::asci_red();
    let decomp = build_decomposition(&sys, &SimConfig::new(1, machine));
    let works: Vec<f64> = decomp.computes.iter().map(|c| c.work).collect();
    let avg = works.iter().sum::<f64>() / works.len() as f64;
    let avg_time = machine.task_time(avg);
    // 10-50× the message overhead (~25 µs round trip).
    assert!(
        avg_time > 10.0 * 25e-6,
        "average grainsize {avg_time}s too small vs message overhead"
    );
}

#[test]
fn restraints_pin_the_protein_during_hot_dynamics() {
    use namd_repro::mdcore::thermostat::Langevin;
    let sys = SystemBuilder::new(SystemSpec {
        name: "restrained",
        box_lengths: Vec3::new(30.0, 30.0, 30.0),
        target_atoms: 2_200,
        protein_chains: 1,
        protein_chain_len: 40,
        lipid_slab: None,
        cutoff: 8.0,
        seed: 31,
    })
    .build_restrained();
    assert_eq!(sys.topology.restraints.len(), 40);
    let anchors: Vec<Vec3> = sys.topology.restraints.iter().map(|r| r.target).collect();

    let mut hot = sys.clone();
    let mut lang = Langevin::new(&hot, 400.0, 0.01, 1.0, 3);
    lang.run(&mut hot, 150);

    // Restrained protein atoms stay near their anchors.
    let mut max_protein = 0.0f64;
    for (i, &a) in anchors.iter().enumerate() {
        max_protein = max_protein.max(hot.cell.dist2(hot.positions[i], a).sqrt());
    }
    assert!(max_protein < 3.5, "restrained atom wandered {max_protein} Å");

    // For contrast: without restraints the same protein drifts further.
    let unrestrained = SystemBuilder::new(SystemSpec {
        name: "unrestrained",
        box_lengths: Vec3::new(30.0, 30.0, 30.0),
        target_atoms: 2_200,
        protein_chains: 1,
        protein_chain_len: 40,
        lipid_slab: None,
        cutoff: 8.0,
        seed: 31,
    })
    .build();
    let start: Vec<Vec3> = unrestrained.positions[..40].to_vec();
    let mut free = unrestrained;
    let mut lang = Langevin::new(&free, 400.0, 0.01, 1.0, 3);
    lang.run(&mut free, 150);
    let mut max_free = 0.0f64;
    for (i, &a) in start.iter().enumerate() {
        max_free = max_free.max(free.cell.dist2(free.positions[i], a).sqrt());
    }
    assert!(
        max_free > max_protein,
        "unrestrained ({max_free} Å) should drift more than restrained ({max_protein} Å)"
    );
}
