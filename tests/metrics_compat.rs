//! Compatibility shims for the PR 5 metrics consolidation: the deprecated
//! `PhaseResult::pairlist` field must keep compiling and agree with the
//! consolidated `PhaseResult::metrics`. This file is the one place the
//! deprecated surface is exercised, so deprecation warnings stay confined
//! to it.

use namd_repro::machine::presets;
use namd_repro::mdcore::prelude::*;
use namd_repro::molgen::{SystemBuilder, SystemSpec};
use namd_repro::namd_core::prelude::*;

fn small_system() -> System {
    SystemBuilder::new(SystemSpec {
        name: "compat",
        box_lengths: Vec3::new(30.0, 30.0, 30.0),
        target_atoms: 1_500,
        protein_chains: 0,
        protein_chain_len: 0,
        lipid_slab: None,
        cutoff: 8.0,
        seed: 9,
    })
    .build()
}

#[test]
fn deprecated_pairlist_field_matches_consolidated_metrics() {
    let cfg = SimConfig::builder(2, presets::generic_cluster())
        .force_mode(ForceMode::Real)
        .dt_fs(1.0)
        .pairlist(true, 2.5)
        .build()
        .unwrap();
    let mut engine = Engine::new(small_system(), cfg);
    let r = engine.run_phase(3);

    // The old per-field counters are shimmed onto the new struct; both
    // views must agree exactly.
    #[allow(deprecated)]
    let legacy = r.pairlist;
    assert_eq!(legacy.builds, r.metrics.pairlist.builds);
    assert_eq!(legacy.hits, r.metrics.pairlist.hits);
    assert_eq!(legacy.executions(), r.metrics.pairlist.executions());
    assert!(r.metrics.pairlist.builds > 0, "cached phase must build lists");

    // The consolidated message ledger reproduces the stats-level residual.
    assert_eq!(
        r.metrics.messages.residual(),
        r.stats.conservation_residual(),
        "PhaseMetrics message ledger diverges from SummaryStats"
    );
    assert_eq!(r.metrics.messages.sent, r.stats.msgs_sent);
    assert_eq!(r.metrics.messages.received, r.stats.msgs_received);
    assert_eq!(r.metrics.checkpoints, 0, "no checkpointing configured");
}

/// Struct-literal configuration stays supported for downstream code that
/// has not migrated to the builder: the engine re-validates per phase.
#[test]
fn struct_literal_config_path_still_works() {
    let mut cfg = SimConfig::new(2, presets::generic_cluster());
    cfg.steps_per_phase = 2;
    let mut engine = Engine::new(small_system(), cfg);
    let r = engine.run_phase(2);
    assert!(r.time_per_step > 0.0 && r.time_per_step.is_finite());
}
