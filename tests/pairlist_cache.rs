//! Pair-list cache satellites (ISSUE 3), built on the schedule-fuzz
//! machinery:
//!
//! * proptest over schedule policies × PE counts × margins: a cached DES
//!   phase reproduces the sequential mdcore physics and matches the
//!   uncached engine at the `backend_equivalence.rs` tolerances, and
//!   passes every invariant oracle;
//! * forced mid-phase invalidation: a tiny margin trips the displacement
//!   guarantee inside a phase, the lists rebuild, and the physics is
//!   unchanged;
//! * `migrate_atoms` boundary: the facade's migration resets the cache and
//!   the cached trajectory still tracks the uncached and sequential ones;
//! * DES virtual time: cache hits are charged `nonbonded_work_cached`,
//!   which is strictly cheaper than the rebuild cost;
//! * `lb::greedy` / `lb::refine` stay valid when compute loads are a mix
//!   of cached-step and rebuild-step work numbers.
//!
//! Case count comes from `SCHEDULE_FUZZ_CASES` (default 6; CI soak 25).

use namd_repro::charmrt::SchedulePolicy;
use namd_repro::lb;
use namd_repro::machine::presets;
use namd_repro::mdcore::prelude::*;
use namd_repro::molgen;
use namd_repro::namd_core::costmodel;
use namd_repro::namd_core::parallel::ParallelSim;
use namd_repro::namd_core::prelude::*;
use proptest::prelude::*;
use std::sync::OnceLock;

fn fuzz_cases() -> u32 {
    std::env::var("SCHEDULE_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
}

/// The same restrained apoa1-like system the equivalence and fuzz suites
/// use: thermalized and pre-stepped so the protein restraints are strained.
fn restrained_apoa1_small() -> System {
    static SYS: OnceLock<System> = OnceLock::new();
    SYS.get_or_init(|| {
        let bench = molgen::apoa1_like().scaled(0.04);
        let mut sys = molgen::SystemBuilder::new(bench.spec().clone()).build_restrained();
        sys.thermalize(300.0, 11);
        let mut sim = Simulator::new(&sys, 1.0);
        for _ in 0..5 {
            sim.step(&mut sys);
        }
        sys
    })
    .clone()
}

const PHASE_STEPS: usize = 3;

/// Sequential mdcore reference for a [`PHASE_STEPS`]-evaluation phase.
struct SeqRef {
    potential0: f64,
    pairs0: u64,
    final_positions: Vec<Vec3>,
}

fn seq_ref() -> &'static SeqRef {
    static REF: OnceLock<SeqRef> = OnceLock::new();
    REF.get_or_init(|| {
        let mut sys = restrained_apoa1_small();
        let mut f = vec![Vec3::ZERO; sys.n_atoms()];
        let e0 = namd_repro::mdcore::sim::compute_forces(&sys, &mut f);
        let mut sim = Simulator::new(&sys, 1.0);
        for _ in 0..PHASE_STEPS - 1 {
            sim.step(&mut sys);
        }
        SeqRef {
            potential0: e0.potential(),
            pairs0: e0.nonbonded.pairs,
            final_positions: sys.positions,
        }
    })
}

fn real_des_cfg(n_pes: usize) -> SimConfigBuilder {
    SimConfig::builder(n_pes, presets::generic_cluster())
        .force_mode(ForceMode::Real)
        .backend(Backend::Des)
        .dt_fs(1.0)
}

fn arb_policy() -> impl Strategy<Value = SchedulePolicy> {
    // The vendored proptest has no `prop_oneof`; pick the policy by index.
    (0u64..u64::MAX, 0usize..4).prop_map(|(seed, which)| {
        let name = ["fifo", "shuffle", "lifo", "jitter"][which];
        SchedulePolicy::parse(name, seed).expect("known policy name")
    })
}

fn n_nonbonded_computes(engine: &Engine) -> u64 {
    engine
        .decomp()
        .computes
        .iter()
        .filter(|c| matches!(c.kind, ComputeKind::SelfNb { .. } | ComputeKind::PairNb { .. }))
        .count() as u64
}

/// Run one cached Real-mode DES phase and check it against the sequential
/// reference, the uncached engine, and the invariant oracles.
fn check_cached_phase(policy: SchedulePolicy, n_pes: usize, margin: f64) -> Result<(), String> {
    let reference = seq_ref();
    let run = |cached: bool| {
        let cfg = real_des_cfg(n_pes)
            .schedule(policy)
            .pairlist(cached, margin)
            .build()
            .expect("valid test config");
        let mut engine = Engine::new(restrained_apoa1_small(), cfg);
        let r = engine.run_phase(PHASE_STEPS);
        let pos = engine.shared.state.read().unwrap().system.positions.clone();
        let report = check_phase(&engine, &r);
        (r, pos, report)
    };
    let (rc, pos_c, report) = run(true);
    let ctx = format!("{:?} seed {} pes {n_pes} margin {margin}", policy.kind, policy.seed);

    // Step-0 energy and exact pair count against the sequential reference.
    let tol = 1e-8 * reference.potential0.abs().max(1.0);
    let diff = (rc.energies[0].potential() - reference.potential0).abs();
    if diff >= tol {
        return Err(format!(
            "cached step-0 potential ({ctx}): {} vs sequential {} (|diff| {diff} >= {tol})",
            rc.energies[0].potential(),
            reference.potential0
        ));
    }
    if rc.energies[0].pairs != reference.pairs0 {
        return Err(format!(
            "cached pair count ({ctx}): {} vs sequential {}",
            rc.energies[0].pairs, reference.pairs0
        ));
    }
    for (i, (pe, ps)) in pos_c.iter().zip(&reference.final_positions).enumerate() {
        let d = (*pe - *ps).norm();
        if d >= 1e-6 {
            return Err(format!("cached atom {i} diverged from sequential by {d} ({ctx})"));
        }
    }
    if !report.ok() {
        return Err(format!("oracle violations ({ctx}):\n{}", report.render()));
    }

    // Cache accounting: every non-bonded compute executed each evaluation.
    let expect = {
        let cfg = real_des_cfg(n_pes).build().expect("valid test config");
        let engine = Engine::new(restrained_apoa1_small(), cfg);
        n_nonbonded_computes(&engine) * PHASE_STEPS as u64
    };
    if rc.metrics.pairlist.executions() != expect {
        return Err(format!(
            "cached executions ({ctx}): builds {} + hits {} != {expect}",
            rc.metrics.pairlist.builds, rc.metrics.pairlist.hits
        ));
    }
    if rc.metrics.pairlist.builds == 0 {
        return Err(format!("no list builds recorded ({ctx})"));
    }

    // The uncached engine must land on the same trajectory.
    let (ru, pos_u, _) = run(false);
    if ru.metrics.pairlist.executions() != 0 {
        return Err(format!("uncached run touched the cache ({ctx}): {:?}", ru.metrics.pairlist));
    }
    let dp = (rc.energies[0].potential() - ru.energies[0].potential()).abs();
    if dp >= tol {
        return Err(format!("cached vs uncached step-0 potential differs by {dp} ({ctx})"));
    }
    for (i, (pc, pu)) in pos_c.iter().zip(&pos_u).enumerate() {
        let d = (*pc - *pu).norm();
        if d >= 1e-6 {
            return Err(format!("cached atom {i} diverged from uncached by {d} ({ctx})"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    #[test]
    fn cached_phases_preserve_physics_across_schedules(
        policy in arb_policy(),
        n_pes in 2usize..5,
        which_margin in 0usize..3,
    ) {
        // 0.0 = rebuild on any motion; 2.5 = the default; 6.0 = oversized.
        let margin = [0.0, 2.5, 6.0][which_margin];
        if let Err(msg) = check_cached_phase(policy, n_pes, margin) {
            prop_assert!(false, "{}", msg);
        }
    }
}

/// A margin small enough that thermal motion trips the displacement bound
/// *inside* a phase: the lists must rebuild mid-phase (more builds than
/// one per compute) and the trajectory must still match the uncached run.
#[test]
fn mid_phase_invalidation_rebuilds_and_stays_exact() {
    let steps = 7;
    let run = |cached: bool| {
        let cfg = real_des_cfg(2)
            .pairlist(cached, 0.25)
            .build()
            .expect("valid test config");
        let mut engine = Engine::new(restrained_apoa1_small(), cfg);
        let r = engine.run_phase(steps);
        let n_nb = n_nonbonded_computes(&engine);
        let pos = engine.shared.state.read().unwrap().system.positions.clone();
        (r, n_nb, pos)
    };
    let (rc, n_nb, pos_c) = run(true);
    assert!(
        rc.metrics.pairlist.builds > n_nb,
        "margin 0.25 over {steps} evaluations must force mid-phase rebuilds: \
         {} builds for {n_nb} non-bonded computes",
        rc.metrics.pairlist.builds
    );
    assert!(rc.metrics.pairlist.hits > 0, "even a tiny margin serves the no-motion bootstrap step");
    assert_eq!(rc.metrics.pairlist.executions(), n_nb * steps as u64);

    let (ru, _, pos_u) = run(false);
    let tol = 1e-8 * ru.energies[0].potential().abs().max(1.0);
    for (ec, eu) in rc.energies.iter().zip(&ru.energies) {
        assert!(
            (ec.potential() - eu.potential()).abs() < tol,
            "cached {} vs uncached {}",
            ec.potential(),
            eu.potential()
        );
        assert_eq!(ec.pairs, eu.pairs, "within-cutoff pair counts must agree");
    }
    for (i, (pc, pu)) in pos_c.iter().zip(&pos_u).enumerate() {
        let d = (*pc - *pu).norm();
        assert!(d < 1e-6, "atom {i} diverged by {d} after forced invalidation");
    }
}

/// Atom migration re-bins patches, so cached slot indices go stale; the
/// engine drops the cache at the boundary. Crossing several migrations,
/// the cached facade must still track the uncached facade and the
/// sequential simulator.
#[test]
fn migration_boundary_resets_cache_and_preserves_trajectory() {
    let sys = restrained_apoa1_small();
    let steps = 8;
    let run = |cached: bool| {
        let mut p = ParallelSim::new(sys.clone(), 2, 1.0).unwrap();
        p.migrate_every = 3; // two migrations inside the run
        p.set_pairlist(cached, 2.5);
        let energies = p.run(steps);
        let stats = p.pairlist_stats();
        let pos = p.system().positions.clone();
        (energies, stats, pos)
    };
    let (ec, stats, pos_c) = run(true);
    // Counters reset at each migration, so these are the post-reset phase:
    // a rebuild for every compute, then hits.
    assert!(stats.builds > 0, "cache must re-prime after migration");
    assert!(stats.hits > 0, "margin 2.5 must serve hits between migrations");

    let (eu, ustats, pos_u) = run(false);
    assert_eq!(ustats.executions(), 0, "uncached run must not touch the cache");

    let mut seq = sys.clone();
    let mut sim = Simulator::new(&seq, 1.0);
    let es: Vec<f64> = (0..steps).map(|_| sim.step(&mut seq).potential()).collect();

    for i in 0..steps {
        let tol = 1e-8 * es[i].abs().max(1.0);
        assert!(
            (ec[i].potential() - es[i]).abs() < tol,
            "step {i}: cached {} vs sequential {}",
            ec[i].potential(),
            es[i]
        );
        assert!(
            (ec[i].potential() - eu[i].potential()).abs() < tol,
            "step {i}: cached {} vs uncached {}",
            ec[i].potential(),
            eu[i].potential()
        );
    }
    for (i, (pc, ps)) in pos_c.iter().zip(&seq.positions).enumerate() {
        let d = (*pc - *ps).norm();
        assert!(d < 1e-6, "atom {i} diverged from sequential by {d}");
    }
    for (i, (pc, pu)) in pos_c.iter().zip(&pos_u).enumerate() {
        let d = (*pc - *pu).norm();
        assert!(d < 1e-6, "atom {i}: cached vs uncached diverged by {d}");
    }
}

/// On the DES, cache hits are charged `costmodel::nonbonded_work_cached`
/// instead of the full rebuild cost, so the modeled makespan of a cached
/// phase must be strictly below the uncached one.
#[test]
fn des_virtual_time_rewards_cache_hits() {
    let total_time = |cached: bool| {
        let cfg = real_des_cfg(2)
            .pairlist(cached, 2.5)
            .build()
            .expect("valid test config");
        let mut engine = Engine::new(restrained_apoa1_small(), cfg);
        engine.run_phase(PHASE_STEPS).total_time
    };
    let (t_cached, t_plain) = (total_time(true), total_time(false));
    assert!(
        t_cached < t_plain,
        "cached virtual makespan {t_cached} must beat uncached {t_plain}"
    );
}

// ---------------------------------------------------------------------------
// Load balancing with mixed cached/rebuild work numbers (satellite of the
// costmodel split): greedy must stay valid and refine must not regress.
// ---------------------------------------------------------------------------

fn arb_mixed_work_problem() -> impl Strategy<Value = lb::LbProblem> {
    // Each compute: within-cutoff pairs, a candidate factor, and whether
    // the measured step was a cache hit or a rebuild.
    let raw_compute = (1u64..20_000, 1.2..3.0f64, 0u8..2, 0usize..4096, 0usize..4096);
    (
        2usize..8,
        1usize..16,
        proptest::collection::vec(0usize..4096, 16..17),
        proptest::collection::vec(raw_compute, 1..80),
    )
        .prop_map(|(n_pes, n_patches, homes, raw)| {
            let computes = raw
                .into_iter()
                .map(|(pairs, factor, hit, ra, rb)| {
                    let candidates = (pairs as f64 * factor) as u64;
                    let load = if hit == 1 {
                        costmodel::nonbonded_work_cached(pairs, candidates)
                    } else {
                        costmodel::nonbonded_work(pairs, candidates)
                    };
                    let (a, b) = (ra % n_patches, rb % n_patches);
                    let patches = if a == b { vec![a] } else { vec![a, b] };
                    lb::ComputeSpec { load, patches }
                })
                .collect();
            lb::LbProblem {
                n_pes,
                background: vec![0.0; n_pes],
                patch_home: homes[..n_patches].iter().map(|h| h % n_pes).collect(),
                computes,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases().max(32)))]

    #[test]
    fn lb_handles_mixed_cached_and_rebuild_loads(problem in arb_mixed_work_problem()) {
        problem.validate().expect("generator produced a valid problem");
        let assignment = lb::greedy(&problem, lb::GreedyParams::default());
        prop_assert_eq!(assignment.len(), problem.computes.len());
        for &pe in &assignment {
            prop_assert!(pe < problem.n_pes);
        }
        let max_before =
            lb::pe_loads(&problem, &assignment).into_iter().fold(0.0f64, f64::max);
        let (after, _moves) = lb::refine(&problem, &assignment, lb::RefineParams::default());
        prop_assert_eq!(after.len(), problem.computes.len());
        let max_after = lb::pe_loads(&problem, &after).into_iter().fold(0.0f64, f64::max);
        prop_assert!(
            max_after <= max_before + 1e-9 * max_before.max(1.0),
            "refine made the bottleneck worse: {} -> {}",
            max_before,
            max_after
        );
    }
}
