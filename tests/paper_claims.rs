//! The paper's qualitative claims, asserted as tests. These are the "shape"
//! checks of DESIGN.md §4 at test-friendly scale; the full-scale numbers
//! live in EXPERIMENTS.md and the `namd-bench` binaries.

use charmrt::MulticastMode;
use namd_repro::machine::presets;
use namd_repro::mdcore::prelude::*;
use namd_repro::molgen::{SystemBuilder, SystemSpec};
use namd_repro::namd_core::prelude::*;

fn slab_system() -> System {
    SystemBuilder::new(SystemSpec {
        name: "claims",
        box_lengths: Vec3::new(44.0, 44.0, 44.0),
        target_atoms: 8_000,
        protein_chains: 1,
        protein_chain_len: 90,
        lipid_slab: Some((16.0, 28.0)),
        cutoff: 9.0,
        seed: 13,
    })
    .build()
}

/// §3: the hybrid decomposition provides ~14 non-bonded objects per patch
/// before splitting — many more schedulable objects than spatial
/// decomposition alone.
#[test]
fn hybrid_decomposition_multiplies_parallelism() {
    let sys = slab_system();
    let cfg = SimConfig::builder(8, presets::ideal())
        .grainsize(usize::MAX, false, 112)
        .build()
        .unwrap();
    let d = build_decomposition(&sys, &cfg);
    let n_patches = d.grid.n_patches();
    let nonbonded = d
        .computes
        .iter()
        .filter(|c| c.terms.is_none())
        .count();
    assert!(
        nonbonded >= 10 * n_patches,
        "{nonbonded} non-bonded computes for {n_patches} patches"
    );
}

/// §4.2.1: splitting removes the grainsize tail (the Figures 1→2 transition)
/// and thereby raises the achievable speedup ceiling.
#[test]
fn splitting_cuts_the_largest_task() {
    let sys = slab_system();
    let machine = presets::asci_red();
    let unsplit_cfg = SimConfig::builder(8, machine)
        .grainsize(usize::MAX, false, 112)
        .build()
        .unwrap();
    let unsplit = build_decomposition(&sys, &unsplit_cfg);
    let split = build_decomposition(&sys, &SimConfig::new(8, machine));

    // §4.2.1 is about the non-bonded grains (Figures 1-2 plot "the critical
    // method ... that computes non-bonded forces"); bonded computes are made
    // migratable (§4.2.2) but never split.
    let max_work = |d: &Decomposition| {
        d.computes
            .iter()
            .filter(|c| c.terms.is_none())
            .map(|c| c.work)
            .fold(0.0, f64::max)
    };
    let (mu, ms) = (max_work(&unsplit), max_work(&split));
    let cfg = SimConfig::new(8, machine);
    assert!(ms < mu, "splitting should cut the largest task: {mu} -> {ms}");
    assert!(
        ms <= cfg.target_grain_work * 1.1,
        "largest split task {ms} exceeds the grain target {}",
        cfg.target_grain_work
    );
    // Total work is conserved, only regrouped.
    let total = |d: &Decomposition| d.computes.iter().map(|c| c.pairs).sum::<u64>();
    assert_eq!(total(&unsplit), total(&split));
}

/// §4.2.3: the naive multicast lengthens the integration entry method; the
/// optimized single-pack version shortens it (Figures 3→4).
#[test]
fn optimized_multicast_shortens_integration() {
    let sys = slab_system();
    let machine = presets::asci_red();
    let integrate_time = |mode: MulticastMode| {
        let cfg = SimConfig::builder(16, machine)
            .multicast(mode)
            .steps_per_phase(2)
            .build()
            .unwrap();
        let mut engine = Engine::new(sys.clone(), cfg);
        let run = engine.run_benchmark();
        let last = run.phases.last().unwrap();
        let e = last.entries.integrate;
        last.stats.entry_time[e.idx()] / last.stats.entry_count[e.idx()] as f64
    };
    let naive = integrate_time(MulticastMode::Naive);
    let optimized = integrate_time(MulticastMode::Optimized);
    assert!(
        optimized < 0.9 * naive,
        "optimized multicast should shorten Integrate: {naive} -> {optimized}"
    );
}

/// §3.2: measurement-based greedy LB beats the initial static placement on
/// a density-imbalanced system, and refinement moves only a few objects.
#[test]
fn measurement_based_lb_beats_static() {
    let sys = slab_system();
    let machine = presets::asci_red();

    let with_lb = |lb: LbStrategy| {
        let cfg = SimConfig::builder(24, machine).lb(lb).steps_per_phase(2).build().unwrap();
        let mut engine = Engine::new(sys.clone(), cfg);
        engine.run_benchmark()
    };
    let static_run = with_lb(LbStrategy::None);
    let greedy_run = with_lb(LbStrategy::GreedyRefine);
    assert!(
        greedy_run.final_time_per_step() < 0.8 * static_run.final_time_per_step(),
        "LB should clearly beat static: {} vs {}",
        greedy_run.final_time_per_step(),
        static_run.final_time_per_step()
    );
    // "This time, only the refinement procedure is used, resulting in only a
    // few additional object migrations."
    assert_eq!(greedy_run.migrations.len(), 2);
    assert!(
        greedy_run.migrations[1] <= greedy_run.migrations[0] / 2,
        "refinement moved {} vs greedy's {}",
        greedy_run.migrations[1],
        greedy_run.migrations[0]
    );
}

/// §3.2: proxy-aware placement needs fewer proxies than proxy-blind
/// placement at comparable balance.
#[test]
fn proxy_awareness_reduces_communication() {
    let sys = slab_system();
    let machine = presets::asci_red();
    let proxies_with = |lb: LbStrategy| {
        let cfg = SimConfig::builder(24, machine).lb(lb).steps_per_phase(2).build().unwrap();
        let mut engine = Engine::new(sys.clone(), cfg);
        engine.run_benchmark();
        engine.proxy_count()
    };
    let aware = proxies_with(LbStrategy::Greedy);
    let blind = proxies_with(LbStrategy::GreedyNoProxy);
    assert!(
        aware < blind,
        "proxy-aware should need fewer proxies: {aware} vs {blind}"
    );
}

/// Table 4's signature: a small system stops scaling once there are many
/// more processors than patches.
#[test]
fn small_systems_saturate() {
    let sys = SystemBuilder::new(SystemSpec {
        name: "small-sat",
        box_lengths: Vec3::new(26.0, 26.0, 26.0),
        target_atoms: 1_500,
        protein_chains: 0,
        protein_chain_len: 0,
        lipid_slab: None,
        cutoff: 8.0,
        seed: 2,
    })
    .build();
    let machine = presets::asci_red();
    let decomp = build_decomposition(&sys, &SimConfig::new(1, machine));
    let time_at = |pes: usize| {
        let cfg = SimConfig::builder(pes, machine).steps_per_phase(2).build().unwrap();
        let mut e = Engine::with_decomposition(sys.clone(), decomp.clone(), cfg);
        e.run_benchmark().final_time_per_step()
    };
    let t8 = time_at(8);
    let t64 = time_at(64);
    let t128 = time_at(128);
    assert!(t64 < t8, "should still scale 8 -> 64");
    // Flat from 64 to 128 — the Table 4 plateau.
    assert!(
        t128 > 0.7 * t64,
        "tiny system should saturate: t64 {t64} t128 {t128}"
    );
}

/// §2.1, the principle of persistence: object loads measured in one phase
/// predict the next phase's loads.
#[test]
fn object_loads_persist_across_phases() {
    let sys = slab_system();
    let cfg = SimConfig::builder(12, presets::asci_red()).steps_per_phase(2).build().unwrap();
    let mut engine = Engine::new(sys, cfg);
    let r1 = engine.run_phase(2);
    let r2 = engine.run_phase(2);
    // Correlation of per-object loads between phases should be ~1.
    let (a, b) = (&r1.compute_loads, &r2.compute_loads);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..a.len() {
        cov += (a[i] - ma) * (b[i] - mb);
        va += (a[i] - ma).powi(2);
        vb += (b[i] - mb).powi(2);
    }
    let corr = cov / (va.sqrt() * vb.sqrt()).max(1e-30);
    assert!(corr > 0.99, "load persistence correlation {corr}");
}
