//! The reproduction's central correctness invariant: the sequential
//! simulator, the DES engine in Real force mode, and the real-threads
//! backend all compute the same physics.

use namd_repro::machine::presets;
use namd_repro::mdcore::prelude::*;
use namd_repro::molgen::{SystemBuilder, SystemSpec};
use namd_repro::namd_core::parallel::ParallelSim;
use namd_repro::namd_core::prelude::*;

fn test_system() -> System {
    let mut sys = SystemBuilder::new(SystemSpec {
        name: "equiv",
        box_lengths: Vec3::new(30.0, 30.0, 30.0),
        target_atoms: 2_400,
        protein_chains: 1,
        protein_chain_len: 50,
        lipid_slab: None,
        cutoff: 8.0,
        seed: 77,
    })
    .build();
    sys.thermalize(200.0, 77);
    sys
}

#[test]
fn three_backends_agree_on_forces() {
    let sys = test_system();

    // Backend 1: sequential cell-list reference.
    let mut f_seq = vec![Vec3::ZERO; sys.n_atoms()];
    let e_seq = namd_repro::mdcore::sim::compute_forces(&sys, &mut f_seq);

    // Backend 2: worker threads over compute objects.
    let mut par = ParallelSim::new(sys.clone(), 2, 1.0).unwrap();
    let acc_par = par.compute_forces();

    // Backend 3: the DES in Real mode. Forces are zeroed after integration,
    // so compare via the step-0 potential energy instead.
    let cfg = SimConfig::builder(3, presets::ideal())
        .force_mode(ForceMode::Real)
        .build()
        .unwrap();
    let mut engine = Engine::new(sys.clone(), cfg);
    let r = engine.run_phase(1);

    let tol = 1e-8 * e_seq.potential().abs().max(1.0);
    assert!(
        (acc_par.potential() - e_seq.potential()).abs() < tol,
        "threads potential {} vs sequential {}",
        acc_par.potential(),
        e_seq.potential()
    );
    assert!(
        (r.energies[0].potential() - e_seq.potential()).abs() < tol,
        "DES potential {} vs sequential {}",
        r.energies[0].potential(),
        e_seq.potential()
    );
    // Pair counts identical (same cutoff semantics everywhere).
    assert_eq!(acc_par.pairs, e_seq.nonbonded.pairs);
    assert_eq!(r.energies[0].pairs, e_seq.nonbonded.pairs);

    // Per-atom forces: threads vs sequential.
    for (i, (fp, fs)) in par.forces().iter().zip(&f_seq).enumerate() {
        let d = (*fp - *fs).norm();
        assert!(d < 1e-9 * (1.0 + fs.norm()), "atom {i} differs by {d}");
    }
}

#[test]
fn trajectories_track_for_several_steps() {
    let sys = test_system();

    // Sequential trajectory, 4 updates.
    let mut seq = sys.clone();
    let mut sim = Simulator::new(&seq, 0.5);
    for _ in 0..4 {
        sim.step(&mut seq);
    }

    // DES-Real trajectory: 5 force evaluations = 4 position updates.
    let cfg = SimConfig::builder(4, presets::ideal())
        .force_mode(ForceMode::Real)
        .dt_fs(0.5)
        .build()
        .unwrap();
    let mut engine = Engine::new(sys.clone(), cfg);
    engine.run_phase(5);
    let des_pos = engine.shared.state.read().unwrap().system.positions.clone();

    // Threads trajectory.
    let mut par = ParallelSim::new(sys, 2, 0.5).unwrap();
    par.migrate_every = 1000; // keep the decomposition fixed, like the DES
    par.run(4);

    for i in (0..seq.positions.len()).step_by(37) {
        let d_des = (des_pos[i] - seq.positions[i]).norm();
        let d_par = (par.system().positions[i] - seq.positions[i]).norm();
        assert!(d_des < 1e-6, "DES atom {i} diverged by {d_des}");
        assert!(d_par < 1e-6, "threads atom {i} diverged by {d_par}");
    }
}

#[test]
fn all_backends_conserve_energy() {
    let sys = test_system();
    let drift = |energies: &[f64]| -> f64 {
        let e0 = energies[1];
        let e1 = *energies.last().unwrap();
        (e1 - e0).abs() / e0.abs().max(1.0)
    };

    // Sequential.
    let mut seq = sys.clone();
    let mut sim = Simulator::new(&seq, 0.5);
    let es: Vec<f64> = (0..25).map(|_| sim.step(&mut seq).total()).collect();
    assert!(drift(&es) < 1e-2, "sequential drift {}", drift(&es));

    // DES Real mode.
    let cfg = SimConfig::builder(4, presets::ideal())
        .force_mode(ForceMode::Real)
        .dt_fs(0.5)
        .build()
        .unwrap();
    let mut engine = Engine::new(sys.clone(), cfg);
    let r = engine.run_phase(25);
    let ed: Vec<f64> = r.energies.iter().map(|e| e.total()).collect();
    assert!(drift(&ed) < 1e-2, "DES drift {}", drift(&ed));

    // Threads backend with live atom migration.
    let mut par = ParallelSim::new(sys, 2, 0.5).unwrap();
    par.migrate_every = 8;
    let ep: Vec<f64> = par.run(25).iter().map(|e| e.total()).collect();
    assert!(drift(&ep) < 1e-2, "threads drift {}", drift(&ep));
}
