//! Multi-process backend satellites: the `proc` backend runs the same
//! chare protocol with one OS *process* per PE, exchanging packed wire
//! messages over Unix domain sockets.
//!
//! * apoa1-small runs to completion on real processes, with forces,
//!   velocities, and energies harvested back into the parent;
//! * the DES, threads, and proc backends produce bit-identical
//!   trajectories from the same seed — the deterministic ascending-sender
//!   force fold makes the trajectory independent of which substrate
//!   scheduled the messages;
//! * a SIGKILLed worker process surfaces as a phase crash, and
//!   checkpoint-based recovery reproduces the uninterrupted trajectory
//!   bit for bit.

use namd_repro::mdcore::prelude::*;
use namd_repro::molgen;
use namd_repro::namd_core::prelude::*;
use namd_repro::namd_core::recovery::{run_with_recovery, RecoveryPolicy};

/// A small apoa1-like membrane+protein system with protein restraints,
/// matching the backend-equivalence suite's workload.
fn restrained_apoa1_small() -> System {
    let bench = molgen::apoa1_like().scaled(0.04);
    let mut sys = molgen::SystemBuilder::new(bench.spec().clone()).build_restrained();
    sys.thermalize(300.0, 11);
    let mut sim = Simulator::new(&sys, 1.0);
    for _ in 0..5 {
        sim.step(&mut sys);
    }
    sys
}

fn real_mode_config(n_pes: usize, backend: Backend) -> SimConfig {
    SimConfig::builder(n_pes, namd_repro::machine::presets::generic_cluster())
        .force_mode(ForceMode::Real)
        .backend(backend)
        .build()
        .expect("valid test config")
}

fn final_state(engine: &Engine) -> (Vec<Vec3>, Vec<Vec3>, Vec<Vec3>) {
    let st = engine.shared.state.read().unwrap();
    (st.system.positions.clone(), st.system.velocities.clone(), st.forces.clone())
}

#[test]
fn proc_backend_runs_apoa1_small_on_real_processes() {
    let sys = restrained_apoa1_small();
    let before: Vec<Vec3> = sys.positions.clone();
    let mut engine = Engine::new(sys, real_mode_config(3, Backend::Proc));
    let r = engine.run_phase(3);

    // Energies were harvested from the worker processes.
    assert_eq!(r.energies.len(), 3);
    assert!(r.energies[0].potential() != 0.0, "workers must report energies");
    assert!(r.energies[0].kinetic > 0.0, "thermalized system has kinetic energy");

    // Real wire traffic crossed the socket mesh, attributed per entry.
    assert!(r.stats.msgs_sent > 0, "cross-process messages must flow");
    assert!(r.stats.bytes_sent > 0);
    assert!(
        r.stats.entry_wire_bytes.iter().sum::<u64>() > 0,
        "packed payload bytes must be attributed to entries"
    );
    assert_eq!(r.stats.pes_killed, 0);

    // Positions moved and were merged back into the parent process.
    let (x, _, f) = final_state(&engine);
    let moved = x.iter().zip(&before).filter(|(a, b)| *a != *b).count();
    assert!(moved > x.len() / 2, "only {moved}/{} atoms moved", x.len());
    assert!(f.iter().any(|v| v.norm() > 0.0), "forces must be harvested");
}

#[test]
fn des_threads_and_proc_trajectories_are_bit_identical() {
    let sys = restrained_apoa1_small();
    let mut des = Engine::new(sys.clone(), real_mode_config(3, Backend::Des));
    let mut thr = Engine::new(sys.clone(), real_mode_config(3, Backend::Threads));
    let mut prc = Engine::new(sys, real_mode_config(3, Backend::Proc));

    let r_des = des.run_phase(3);
    let r_thr = thr.run_phase(3);
    let r_prc = prc.run_phase(3);

    let (dx, dv, df) = final_state(&des);
    for (name, engine) in [("threads", &thr), ("proc", &prc)] {
        let (x, v, f) = final_state(engine);
        for i in 0..dx.len() {
            assert_eq!(dx[i].x.to_bits(), x[i].x.to_bits(), "{name} atom {i} x");
            assert_eq!(dx[i].y.to_bits(), x[i].y.to_bits(), "{name} atom {i} y");
            assert_eq!(dx[i].z.to_bits(), x[i].z.to_bits(), "{name} atom {i} z");
            assert_eq!(dv[i].x.to_bits(), v[i].x.to_bits(), "{name} atom {i} vx");
            assert_eq!(df[i].x.to_bits(), f[i].x.to_bits(), "{name} atom {i} fx");
        }
    }

    // Energies are order-dependent observables: equal to rounding, not bits.
    for (r, name) in [(&r_thr, "threads"), (&r_prc, "proc")] {
        for (s, (a, b)) in r_des.energies.iter().zip(r.energies.iter()).enumerate() {
            let tol = 1e-8 * a.total().abs().max(1.0);
            assert!(
                (a.total() - b.total()).abs() < tol,
                "step {s} energy: des {} vs {name} {}",
                a.total(),
                b.total()
            );
        }
    }
}

fn recovery_engine(dir: &std::path::Path, backend: Backend) -> Engine {
    let mut sys = molgen::SystemBuilder::new(molgen::SystemSpec {
        name: "proc-recovery-test",
        box_lengths: Vec3::new(28.0, 28.0, 28.0),
        target_atoms: 1200,
        protein_chains: 1,
        protein_chain_len: 24,
        lipid_slab: None,
        cutoff: 8.0,
        seed: 7,
    })
    .build();
    sys.thermalize(150.0, 7);
    let cfg = SimConfig::builder(2, namd_repro::machine::presets::generic_cluster())
        .force_mode(ForceMode::Real)
        .backend(backend)
        .checkpoint(dir, 4)
        .build()
        .expect("valid test config");
    Engine::new(sys, cfg)
}

#[test]
fn sigkilled_worker_process_recovers_bit_identically() {
    // Reference: uninterrupted run on the deterministic DES.
    let tmp_a = tempdir("proc-recovery-ref");
    let mut reference = recovery_engine(&tmp_a, Backend::Des);
    run_with_recovery(&mut reference, 8, &RecoveryPolicy::default()).unwrap();
    let (ref_x, ref_v, _) = final_state(&reference);

    // Killed run: the fault plan SIGKILLs PE 1's real OS process mid-phase;
    // the parent detects the death, rolls back to the newest checkpoint,
    // and resumes.
    let tmp_b = tempdir("proc-recovery-killed");
    let mut killed = recovery_engine(&tmp_b, Backend::Proc);
    killed.config.fault_plan = Some(
        namd_repro::charmrt::FaultPlan::parse("kill:entry=PatchRecvForces:dst=1:skip=6")
            .unwrap(),
    );
    let report = run_with_recovery(&mut killed, 8, &RecoveryPolicy::default()).unwrap();
    assert!(report.recoveries >= 1, "the kill must have fired");
    assert_eq!(report.updates, 8);
    let (x, v, _) = final_state(&killed);

    for i in 0..ref_x.len() {
        assert_eq!(ref_x[i].x.to_bits(), x[i].x.to_bits(), "atom {i} x");
        assert_eq!(ref_x[i].y.to_bits(), x[i].y.to_bits(), "atom {i} y");
        assert_eq!(ref_x[i].z.to_bits(), x[i].z.to_bits(), "atom {i} z");
        assert_eq!(ref_v[i].x.to_bits(), v[i].x.to_bits(), "atom {i} vx");
    }
    std::fs::remove_dir_all(&tmp_a).ok();
    std::fs::remove_dir_all(&tmp_b).ok();
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let pid = std::process::id();
    let path = std::env::temp_dir().join(format!("namd-{tag}-{pid}"));
    std::fs::remove_dir_all(&path).ok();
    path
}

/// Case count for the fuzz group below, from the same knob the schedule
/// fuzzer uses (`SCHEDULE_FUZZ_CASES`, default 4; CI's soak job runs 25).
fn fuzz_cases() -> u64 {
    std::env::var("SCHEDULE_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Deterministic equivalence fuzz: across systems (seeds) and PE counts,
/// the proc backend's trajectory must match the DES bit for bit. Each case
/// forks a fresh worker mesh, so this also soaks process setup/teardown.
#[test]
fn proc_fuzz_matches_des_across_seeds_and_pe_counts() {
    for case in 0..fuzz_cases() {
        let seed = 100 + case;
        let n_pes = 2 + (case % 3) as usize;
        let build = || {
            let mut sys = molgen::SystemBuilder::new(molgen::SystemSpec {
                name: "proc-fuzz",
                box_lengths: Vec3::new(28.0, 28.0, 28.0),
                target_atoms: 1200,
                protein_chains: 1,
                protein_chain_len: 24,
                lipid_slab: None,
                cutoff: 8.0,
                seed,
            })
            .build();
            sys.thermalize(150.0, seed);
            sys
        };
        let mut des = Engine::new(build(), real_mode_config(n_pes, Backend::Des));
        let mut prc = Engine::new(build(), real_mode_config(n_pes, Backend::Proc));
        des.run_phase(3);
        prc.run_phase(3);
        let (dx, dv, _) = final_state(&des);
        let (px, pv, _) = final_state(&prc);
        for i in 0..dx.len() {
            assert_eq!(
                dx[i].x.to_bits(),
                px[i].x.to_bits(),
                "case {case} (seed {seed}, {n_pes} PEs): atom {i} x diverged"
            );
            assert_eq!(
                dv[i].x.to_bits(),
                pv[i].x.to_bits(),
                "case {case} (seed {seed}, {n_pes} PEs): atom {i} vx diverged"
            );
        }
    }
}
