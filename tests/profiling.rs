//! Observability-layer integration tests (PR 5):
//!
//! * cross-backend trace discipline: a DES phase replays an identical
//!   trace across schedule seeds at a fixed policy, and a threads phase
//!   satisfies the per-PE utilization-sum invariant;
//! * critical-path analysis: the modeled critical path never exceeds the
//!   makespan and is monotone under an injected straggler PE;
//! * the `MetricsRegistry` end to end on both backends: Perfetto-loadable
//!   Chrome-trace JSON plus `phases.jsonl` summaries, with the DES
//!   utilization decomposition enforced by `oracle::check_phase`.

use namd_repro::charmrt::SchedulePolicy;
use namd_repro::machine::presets;
use namd_repro::mdcore::prelude::*;
use namd_repro::molgen::{SystemBuilder, SystemSpec};
use namd_repro::namd_core::prelude::*;

fn test_system(seed: u64) -> System {
    SystemBuilder::new(SystemSpec {
        name: "profiling",
        box_lengths: Vec3::new(36.0, 36.0, 36.0),
        target_atoms: 3_000,
        protein_chains: 1,
        protein_chain_len: 40,
        lipid_slab: None,
        cutoff: 8.0,
        seed,
    })
    .build()
}

fn tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "namd_profiling_test_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// At a fixed policy (FIFO here), the schedule seed is inert: the DES must
/// replay a bit-identical trace, so profiles are comparable across runs.
#[test]
fn des_trace_is_identical_across_schedule_seeds_at_fixed_policy() {
    let sys = test_system(3);
    let trace_for = |seed: u64| {
        let cfg = SimConfig::builder(6, presets::asci_red())
            .schedule(SchedulePolicy::parse("fifo", seed).unwrap())
            .tracing(true)
            .build()
            .unwrap();
        let mut engine = Engine::new(sys.clone(), cfg);
        let r = engine.run_phase(3);
        (r.trace.expect("tracing on"), r.total_time.to_bits())
    };
    let (ta, ma) = trace_for(1);
    let (tb, mb) = trace_for(0xDEAD_BEEF);
    assert_eq!(ma, mb, "makespan depends on an inert seed");
    assert_eq!(ta, tb, "trace depends on an inert seed under FIFO");
}

/// Threads-backend utilization sums: per PE, the trace's summed event
/// durations must reproduce the measured busy time, and the utilization
/// report must tile each PE's span as work + overhead + idle.
#[test]
fn threads_trace_satisfies_utilization_sum_invariant() {
    let cfg = SimConfig::builder(3, presets::generic_cluster())
        .force_mode(ForceMode::Real)
        .backend(Backend::Threads)
        .dt_fs(1.0)
        .tracing(true)
        .build()
        .unwrap();
    let mut engine = Engine::new(test_system(4), cfg);
    let r = engine.run_phase(3);
    let trace = r.trace.as_ref().expect("tracing on");
    let span = r.total_time;
    assert!(span > 0.0);

    let n_pes = r.stats.pe_busy.len();
    let mut traced = vec![0.0f64; n_pes];
    for e in &trace.events {
        assert!(e.duration() >= 0.0, "negative event duration");
        traced[e.pe] += e.duration();
    }
    for pe in 0..n_pes {
        let busy = r.stats.pe_busy[pe];
        let tol = 1e-9 * busy.max(1e-12) * (1.0 + trace.events.len() as f64);
        assert!(
            (traced[pe] - busy).abs() <= tol,
            "PE {pe}: trace sums to {} but measured busy is {busy}",
            traced[pe]
        );
    }

    let report = UtilizationReport::from_stats(&r.stats, span);
    for pe in &report.pes {
        assert!(
            pe.residual().abs() <= 1e-9 * span * (1.0 + r.stats.msgs_received as f64),
            "PE {}: work {} + overhead {} + idle {} does not tile span {span}",
            pe.pe,
            pe.work,
            pe.overhead,
            pe.idle
        );
    }
    let u = report.avg_utilization();
    assert!((0.0..=1.0 + 1e-9).contains(&u), "average utilization {u} out of range");
}

/// The modeled critical path is a lower bound on the makespan, and slowing
/// one PE (an injected straggler) can only lengthen it.
#[test]
fn critical_path_is_bounded_and_monotone_under_straggler() {
    let sys = test_system(5);
    let run_with = |speeds: Vec<f64>| {
        let cfg = SimConfig::builder(4, presets::asci_red())
            .pe_speeds(speeds)
            .steps_per_phase(3)
            .build()
            .unwrap();
        let mut engine = Engine::new(sys.clone(), cfg);
        let r = engine.run_phase(3);
        assert!(
            r.metrics.critical_path > 0.0,
            "critical path not accumulated: {:?}",
            r.metrics
        );
        assert!(
            r.metrics.critical_path <= r.total_time * (1.0 + 1e-9),
            "critical path {} exceeds makespan {}",
            r.metrics.critical_path,
            r.total_time
        );
        let report = CriticalPathReport {
            critical_path: r.metrics.critical_path,
            makespan: r.total_time,
            n_steps: 3,
        };
        assert!(report.headroom() >= 1.0 - 1e-9);
        r.metrics.critical_path
    };
    let uniform = run_with(vec![1.0; 4]);
    let straggler = run_with(vec![1.0, 1.0, 1.0, 0.25]);
    assert!(
        straggler >= uniform * (1.0 - 1e-12),
        "slowing PE 3 shortened the critical path: {uniform} -> {straggler}"
    );
}

/// End to end on both backends: the registry streams Perfetto-loadable
/// Chrome-trace JSON and per-phase JSONL summaries, and on the DES the
/// utilization decomposition is enforced by the phase oracle.
#[test]
fn metrics_registry_writes_perfetto_traces_on_both_backends() {
    let sys = test_system(6);
    for (backend, name) in [(Backend::Des, "des"), (Backend::Threads, "threads")] {
        let dir = tmp(name);
        let cfg = SimConfig::builder(3, presets::generic_cluster())
            .force_mode(ForceMode::Real)
            .backend(backend)
            .dt_fs(1.0)
            .build()
            .unwrap();
        let mut engine = Engine::new(sys.clone(), cfg);
        engine.set_metrics(Some(MetricsRegistry::with_dir(&dir, 1).unwrap()));
        let r = engine.run_phase(2);

        if backend == Backend::Des {
            let report = check_phase(&engine, &r);
            assert!(report.ok(), "oracle violations on DES:\n{}", report.render());
            assert!(
                report.checks_run.contains(&"utilization"),
                "utilization oracle did not run: {:?}",
                report.checks_run
            );
        }

        let reg = engine.metrics.as_ref().unwrap();
        assert_eq!(reg.phases.len(), 1);
        let profile = &reg.phases[0];
        assert_eq!(profile.backend, name);
        assert!(!profile.grainsize.entries.is_empty(), "no grainsize histograms");

        let trace_path = dir.join(format!("trace_phase000_{name}.json"));
        let body = std::fs::read_to_string(&trace_path).unwrap();
        assert!(body.starts_with("[\n"), "{name}: not a trace-event array");
        assert!(body.trim_end().ends_with("]"), "{name}: unterminated JSON");
        assert!(body.contains("\"ph\":\"X\""), "{name}: no complete events");
        assert!(body.contains("\"thread_name\""), "{name}: no PE track metadata");
        assert!(body.contains("\"cat\":\"nonbonded\""), "{name}: no nonbonded category");
        let summaries = std::fs::read_to_string(dir.join("phases.jsonl")).unwrap();
        assert_eq!(summaries.lines().count(), 1);
        assert!(summaries.contains(&format!("\"backend\":\"{name}\"")), "{summaries}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// LB decisions are audited: the benchmark pipeline's greedy pass must
/// record before/after loads and a migration list that matches the load
/// delta it claims.
#[test]
fn lb_audit_records_migrations_and_load_deltas() {
    let cfg = SimConfig::builder(8, presets::asci_red())
        .steps_per_phase(2)
        .build()
        .unwrap();
    let mut engine = Engine::new(test_system(7), cfg);
    engine.set_metrics(Some(MetricsRegistry::in_memory()));
    engine.run_benchmark();
    let reg = engine.metrics.as_ref().unwrap();
    assert!(
        !reg.lb_audits.is_empty(),
        "greedy+refine benchmark produced no LB audits"
    );
    for audit in &reg.lb_audits {
        assert_eq!(audit.before.len(), 8);
        assert_eq!(audit.after.len(), 8);
        for m in &audit.migrations {
            assert!(m.from < 8 && m.to < 8 && m.from != m.to);
        }
        let line = audit.to_json_line();
        assert!(line.contains(&format!("\"strategy\":\"{}\"", audit.strategy)), "{line}");
    }
    // The greedy pass on a fresh placement must actually move something.
    assert!(reg.lb_audits.iter().any(|a| !a.migrations.is_empty()));
}
