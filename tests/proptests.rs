//! Property-based tests (proptest) over the core data structures and
//! invariants, spanning crates.

use namd_repro::lb;
use namd_repro::mdcore::prelude::*;
use namd_repro::namd_core::decomp::{even_ranges, triangle_ranges};
use namd_repro::namd_core::patchgrid::PatchGrid;
use proptest::prelude::*;

fn arb_vec3(l: f64) -> impl Strategy<Value = Vec3> {
    (0.0..l, 0.0..l, 0.0..l).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn min_image_is_antisymmetric_and_bounded(
        a in arb_vec3(25.0),
        b in arb_vec3(25.0),
    ) {
        let cell = Cell::cube(25.0);
        let d1 = cell.min_image(a, b);
        let d2 = cell.min_image(b, a);
        prop_assert!((d1 + d2).norm() < 1e-9);
        // Each component within half the box.
        for ax in 0..3 {
            prop_assert!(d1.axis(ax).abs() <= 12.5 + 1e-9);
        }
    }

    #[test]
    fn wrap_is_idempotent_and_preserves_distances(
        a in arb_vec3(100.0),
        b in arb_vec3(100.0),
    ) {
        let cell = Cell::periodic(Vec3::ZERO, Vec3::new(20.0, 30.0, 15.0));
        let wa = cell.wrap(a);
        prop_assert!(cell.contains(wa));
        prop_assert!((cell.wrap(wa) - wa).norm() < 1e-12);
        prop_assert!((cell.dist2(a, b) - cell.dist2(wa, cell.wrap(b))).abs() < 1e-6);
    }

    #[test]
    fn exclusions_symmetric_for_random_chains(
        bonds in proptest::collection::vec((0u32..20, 0u32..20), 0..40)
    ) {
        let mut topo =
            Topology { atoms: vec![Atom { mass: 12.0, charge: 0.0, lj_type: 0 }; 20], ..Default::default() };
        for (a, b) in bonds {
            if a != b {
                topo.bonds.push(Bond { a, b, k: 1.0, r0: 1.5 });
            }
        }
        let ex = Exclusions::from_topology(&topo);
        for i in 0..20u32 {
            for j in 0..20u32 {
                if i != j {
                    prop_assert_eq!(ex.kind(i, j), ex.kind(j, i));
                }
            }
        }
        // 1-2 partners are always fully excluded.
        for b in &topo.bonds {
            prop_assert_eq!(ex.kind(b.a, b.b), ExclusionKind::Full);
        }
    }

    #[test]
    fn cell_list_finds_exactly_the_brute_force_pairs(
        pts in proptest::collection::vec(arb_vec3(22.0), 2..60),
        cutoff in 4.0f64..8.0,
    ) {
        let cell = Cell::cube(22.0);
        let cl = CellList::build(&cell, &pts, cutoff);
        let mut fast: Vec<(u32, u32)> = cl.neighbor_pairs(&pts, cutoff);
        fast.sort_unstable();
        let mut brute = Vec::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if cell.dist2(pts[i], pts[j]) < cutoff * cutoff {
                    brute.push((i as u32, j as u32));
                }
            }
        }
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn patch_grid_partitions_atoms(
        pts in proptest::collection::vec(arb_vec3(50.0), 1..120),
    ) {
        let cell = Cell::cube(50.0);
        let grid = PatchGrid::build(&cell, &pts, 10.0, 2.0);
        let mut seen = vec![0u32; pts.len()];
        for atoms in &grid.atoms {
            for &a in atoms {
                seen[a as usize] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "not a partition: {:?}", seen);
    }

    #[test]
    fn range_splitters_cover_exactly(
        n in 0usize..500,
        pieces in 1usize..12,
    ) {
        for ranges in [triangle_ranges(n, pieces), even_ranges(n, pieces)] {
            let mut prev = 0;
            for r in &ranges {
                prop_assert_eq!(r.start, prev);
                prop_assert!(r.end >= r.start);
                prev = r.end;
            }
            prop_assert_eq!(prev, n);
        }
    }

    #[test]
    fn rcb_uses_every_part_and_loses_nothing(
        pts in proptest::collection::vec((0.0f64..30.0, 0.0f64..30.0, 0.0f64..30.0), 1..80),
        n_parts in 1usize..16,
    ) {
        let points: Vec<[f64; 3]> = pts.iter().map(|&(x, y, z)| [x, y, z]).collect();
        let weights = vec![1.0; points.len()];
        let parts = lb::rcb(&points, &weights, n_parts);
        prop_assert_eq!(parts.len(), points.len());
        prop_assert!(parts.iter().all(|&p| p < n_parts));
        // All parts used when there are at least as many points as parts.
        if points.len() >= n_parts {
            let mut used = vec![false; n_parts];
            for &p in &parts {
                used[p] = true;
            }
            prop_assert!(used.iter().all(|&u| u), "unused part: {:?}", parts);
        }
    }

    #[test]
    fn greedy_assigns_every_compute_to_a_valid_pe(
        loads in proptest::collection::vec(0.01f64..5.0, 1..60),
        n_pes in 1usize..12,
    ) {
        let n_patches = loads.len();
        let problem = lb::LbProblem {
            n_pes,
            background: vec![0.0; n_pes],
            patch_home: (0..n_patches).map(|p| p % n_pes).collect(),
            computes: loads
                .iter()
                .enumerate()
                .map(|(i, &l)| lb::ComputeSpec { load: l, patches: vec![i] })
                .collect(),
        };
        let a = lb::greedy(&problem, lb::GreedyParams::default());
        prop_assert_eq!(a.len(), problem.computes.len());
        prop_assert!(a.iter().all(|&pe| pe < n_pes));
        // Refinement never raises the imbalance.
        let before = lb::imbalance_ratio(&problem, &a);
        let (refined, _) = lb::refine(&problem, &a, lb::RefineParams::default());
        let after = lb::imbalance_ratio(&problem, &refined);
        prop_assert!(after <= before + 1e-9, "refine worsened {before} -> {after}");
    }

    #[test]
    fn nonbonded_forces_antisymmetric_for_random_pairs(
        p1 in arb_vec3(20.0),
        p2 in arb_vec3(20.0),
        q1 in -1.0f64..1.0,
        q2 in -1.0f64..1.0,
    ) {
        let cell = Cell::cube(20.0);
        let ff = ForceField::biomolecular(8.0);
        let ex = Exclusions::none(2);
        // Keep away from the r → 0 singularity.
        prop_assume!(cell.dist2(p1, p2) > 0.5);
        let pos = [p1, p2];
        let ids = [0u32, 1];
        let lj = [0u16, 0];
        let q = [q1, q2];
        let g = AtomGroup::new(&pos, &ids, &lj, &q);
        let mut f = vec![Vec3::ZERO; 2];
        let res = nb_self(&ff, &ex, g, &cell, &mut f);
        prop_assert!((f[0] + f[1]).norm() < 1e-9 * (1.0 + f[0].norm()));
        prop_assert!(res.energy().is_finite());
    }

    #[test]
    fn water_box_targets_are_always_hit(
        n_waters in 10usize..120,
        seed in 0u64..50,
    ) {
        let sys = namd_repro::molgen::SystemBuilder::new(namd_repro::molgen::SystemSpec {
            name: "prop-water",
            box_lengths: Vec3::splat(24.0),
            target_atoms: n_waters * 3,
            protein_chains: 0,
            protein_chain_len: 0,
            lipid_slab: None,
            cutoff: 8.0,
            seed,
        })
        .build();
        prop_assert_eq!(sys.n_atoms(), n_waters * 3);
        prop_assert!(sys.topology.validate().is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fft_roundtrip_on_random_signals(
        values in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..6),
        log2n in 3u32..9,
    ) {
        use namd_repro::pme::fft::{fft_in_place, Complex};
        let n = 1usize << log2n;
        // Tile the random values across the signal.
        let orig: Vec<Complex> = (0..n)
            .map(|i| {
                let (re, im) = values[i % values.len()];
                Complex::new(re + i as f64 * 0.01, im)
            })
            .collect();
        let mut d = orig.clone();
        fft_in_place(&mut d, false);
        // Parseval.
        let te: f64 = orig.iter().map(|c| c.norm2()).sum();
        let fe: f64 = d.iter().map(|c| c.norm2()).sum::<f64>() / n as f64;
        prop_assert!((te - fe).abs() < 1e-6 * te.max(1.0));
        // Roundtrip.
        fft_in_place(&mut d, true);
        for (a, b) in d.iter().zip(&orig) {
            prop_assert!((a.re / n as f64 - b.re).abs() < 1e-9);
            prop_assert!((a.im / n as f64 - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn erf_is_monotone_odd_and_bounded(x in -6.0f64..6.0, y in -6.0f64..6.0) {
        use namd_repro::pme::erf::{erf, erfc};
        prop_assert!((-1.0..=1.0).contains(&erf(x)));
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        if x < y {
            prop_assert!(erf(x) <= erf(y) + 1e-12);
        }
    }

    #[test]
    fn pairlist_margin_guarantee(
        seed in 0u64..30,
        moves in 0.0f64..0.9,
    ) {
        use namd_repro::mdcore::pairlist::PairList;
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let cell = Cell::cube(24.0);
        let mut pos: Vec<Vec3> = (0..60)
            .map(|_| {
                Vec3::new(
                    rng.gen::<f64>() * 24.0,
                    rng.gen::<f64>() * 24.0,
                    rng.gen::<f64>() * 24.0,
                )
            })
            .collect();
        let pl = PairList::build(&cell, &pos, 7.0, 2.0);
        // Move every atom by `moves` (< margin/2 = 1.0): list must stay
        // valid AND complete.
        for p in pos.iter_mut() {
            let dir = Vec3::new(
                rng.gen::<f64>() - 0.5,
                rng.gen::<f64>() - 0.5,
                rng.gen::<f64>() - 0.5,
            );
            if let Some(d) = dir.normalized() {
                *p = cell.wrap(*p + d * moves);
            }
        }
        prop_assert!(pl.is_valid(&cell, &pos));
        let candidates: std::collections::BTreeSet<(u32, u32)> =
            pl.pairs().iter().copied().collect();
        for i in 0..pos.len() {
            for j in (i + 1)..pos.len() {
                if cell.dist2(pos[i], pos[j]) < 49.0 {
                    prop_assert!(
                        candidates.contains(&(i as u32, j as u32)),
                        "pair ({i},{j}) inside cutoff but not a candidate"
                    );
                }
            }
        }
    }

    #[test]
    fn diffusion_strategy_invariants(
        loads in proptest::collection::vec(0.05f64..3.0, 4..40),
        n_pes in 2usize..10,
    ) {
        let problem = lb::LbProblem {
            n_pes,
            background: vec![0.0; n_pes],
            patch_home: (0..loads.len()).map(|p| p % n_pes).collect(),
            computes: loads
                .iter()
                .enumerate()
                .map(|(i, &l)| lb::ComputeSpec { load: l, patches: vec![i] })
                .collect(),
        };
        let start = vec![0usize; loads.len()];
        let out = lb::diffusion(&problem, &start, lb::DiffusionParams::default());
        prop_assert_eq!(out.len(), loads.len());
        prop_assert!(out.iter().all(|&pe| pe < n_pes));
        let before = lb::imbalance_ratio(&problem, &start);
        let after = lb::imbalance_ratio(&problem, &out);
        prop_assert!(after <= before + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The message-driven protocol must reach completion under *any* valid
    /// placement of the migratable computes — no deadlocks, no lost
    /// messages, and the audit identity intact.
    #[test]
    fn engine_completes_under_arbitrary_placements(seed in 0u64..200) {
        use namd_repro::machine::presets;
        use namd_repro::namd_core::prelude::*;

        let sys = namd_repro::molgen::SystemBuilder::new(namd_repro::molgen::SystemSpec {
            name: "prop-engine",
            box_lengths: Vec3::splat(30.0),
            target_atoms: 1_500,
            protein_chains: 0,
            protein_chain_len: 0,
            lipid_slab: None,
            cutoff: 9.0,
            seed: 1,
        })
        .build();
        let n_pes = 7;
        let cfg = SimConfig::builder(n_pes, presets::asci_red())
            .steps_per_phase(2)
            .build()
            .unwrap();
        let mut engine = Engine::new(sys, cfg);

        // Scramble the placement of migratable computes deterministically.
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for j in 0..engine.placement.len() {
            if engine.decomp().computes[j].migratable {
                engine.placement[j] = (next() % n_pes as u64) as usize;
            }
        }
        let r = engine.run_phase(2);
        prop_assert!(r.time_per_step.is_finite() && r.time_per_step > 0.0);
        // Every patch integrated exactly twice, every compute executed twice.
        let n_patches = engine.decomp().grid.n_patches();
        prop_assert_eq!(
            r.stats.entry_count[r.entries.integrate.idx()],
            2 * n_patches as u64
        );
        let a = namd_repro::namd_core::audit::audit(
            engine.decomp(),
            &presets::asci_red(),
            &r,
            n_pes,
        );
        let gap = (a.actual.component_sum() - a.actual.total).abs();
        prop_assert!(gap < 0.05 * a.actual.total, "audit identity broken: {gap}");
    }
}

mod wire_roundtrips {
    //! Pack/unpack round-trips for every wire message type: arbitrary field
    //! values survive the serialization boundary bit-exactly, and mutated or
    //! truncated byte streams are rejected rather than misread.

    use super::*;
    use namd_repro::charmrt::wire::{encode_frame, read_frame};
    use namd_repro::charmrt::{EntryId, ObjId, WireCodec, WireMsg};
    use namd_repro::namd_core::messages::{
        CkptMsg, CoordMsg, EnergiesMsg, ForceMsg, PatchStateMsg,
    };
    use namd_repro::namd_core::state::StepAcc;

    /// Finite but otherwise arbitrary coordinates, including negatives,
    /// zeros, and subnormal-adjacent magnitudes.
    fn arb_any_vec3() -> impl Strategy<Value = Vec3> {
        let c = -1e12f64..1e12;
        (c.clone(), c.clone(), c).prop_map(|(x, y, z)| Vec3::new(x, y, z))
    }

    fn arb_vecs(max: usize) -> impl Strategy<Value = Vec<Vec3>> {
        proptest::collection::vec(arb_any_vec3(), 0..max)
    }

    fn arb_step_acc() -> impl Strategy<Value = StepAcc> {
        let e = -1e9f64..1e9;
        (
            (e.clone(), e.clone(), e.clone(), e.clone()),
            (e.clone(), e.clone(), e.clone(), e),
            0u64..=u64::MAX,
        )
            .prop_map(|((e_lj, e_elec, e_bond, e_angle), (e_dihedral, e_improper, e_restraint, kinetic), pairs)| {
                StepAcc {
                    e_lj,
                    e_elec,
                    e_bond,
                    e_angle,
                    e_dihedral,
                    e_improper,
                    e_restraint,
                    kinetic,
                    pairs,
                }
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn force_msg_roundtrip(from in 0u32..=u32::MAX, block in arb_vecs(24)) {
            let m = ForceMsg { from, block };
            let bytes = m.pack();
            prop_assert!(!bytes.is_empty(), "packed messages are never empty");
            prop_assert_eq!(ForceMsg::unpack(&bytes).unwrap(), m);
        }

        #[test]
        fn coord_msg_roundtrip(patch in 0u32..=u32::MAX, positions in arb_vecs(24)) {
            let m = CoordMsg { patch, positions };
            prop_assert_eq!(CoordMsg::unpack(&m.pack()).unwrap(), m);
        }

        #[test]
        fn ckpt_msg_roundtrip(
            patch in 0u32..=u32::MAX,
            positions in arb_vecs(16),
            velocities in arb_vecs(16),
        ) {
            let m = CkptMsg { patch, positions, velocities };
            prop_assert_eq!(CkptMsg::unpack(&m.pack()).unwrap(), m);
        }

        #[test]
        fn patch_state_msg_roundtrip(
            patch in 0u32..=u32::MAX,
            positions in arb_vecs(12),
            velocities in arb_vecs(12),
            forces in arb_vecs(12),
        ) {
            let m = PatchStateMsg { patch, positions, velocities, forces };
            prop_assert_eq!(PatchStateMsg::unpack(&m.pack()).unwrap(), m);
        }

        #[test]
        fn energies_msg_roundtrip(
            steps in proptest::collection::vec(arb_step_acc(), 0..12),
        ) {
            let m = EnergiesMsg { steps };
            prop_assert_eq!(EnergiesMsg::unpack(&m.pack()).unwrap(), m);
        }

        #[test]
        fn wire_msg_roundtrip(
            (to, entry) in (0u32..=u32::MAX, 0u16..=u16::MAX),
            (src, dst) in (0usize..4096, 0usize..4096),
            priority in i32::MIN..=i32::MAX,
            bytes in 0u64..=u64::MAX,
            path in 0.0f64..1e9,
            payload in proptest::collection::vec(0u8..=u8::MAX, 0..256),
        ) {
            let m = WireMsg {
                to: ObjId(to),
                entry: EntryId(entry),
                src,
                dst,
                priority,
                bytes,
                path,
                payload,
            };
            prop_assert_eq!(WireMsg::unpack(&m.pack()).unwrap(), m);
        }

        /// Truncating a packed message at any boundary must error, never
        /// silently yield a different message.
        #[test]
        fn truncation_is_always_rejected(
            positions in arb_vecs(8),
            cut in 0usize..=usize::MAX,
        ) {
            let bytes = CoordMsg { patch: 3, positions }.pack();
            let cut = cut % bytes.len(); // strictly shorter than the message
            prop_assert!(CoordMsg::unpack(&bytes[..cut]).is_err());
        }

        /// Appending garbage after a packed message must error too.
        #[test]
        fn trailing_garbage_is_always_rejected(
            velocities in arb_vecs(8),
            extra in proptest::collection::vec(0u8..=u8::MAX, 1..16),
        ) {
            let mut bytes =
                CkptMsg { patch: 0, positions: vec![], velocities }.pack();
            bytes.extend_from_slice(&extra);
            prop_assert!(CkptMsg::unpack(&bytes).is_err());
        }

        /// The socket framing (`u32 len · u64 crc64 · body`) round-trips any
        /// body and detects any single-byte corruption.
        #[test]
        fn frame_roundtrip_and_crc_detection(
            body in proptest::collection::vec(0u8..=u8::MAX, 0..512),
            flip_at in 0usize..=usize::MAX,
            flip_bits in 1u8..=255,
        ) {
            let frame = encode_frame(&body);
            let back = read_frame(&mut &frame[..]).unwrap().expect("one frame");
            prop_assert_eq!(&back, &body);

            let mut bad = frame.clone();
            let i = flip_at % bad.len();
            bad[i] ^= flip_bits;
            // Any corruption is caught: either the CRC/length check fires, or
            // the frame is cut short / overlong and the reader errors.
            match read_frame(&mut &bad[..]) {
                Err(_) => {}
                Ok(decoded) => {
                    prop_assert!(decoded.as_deref() != Some(&body[..]));
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bonded kernels are exact gradients at arbitrary (non-degenerate)
    /// geometries — the fixed-geometry unit tests, generalized.
    #[test]
    fn bonded_kernels_are_gradients_everywhere(
        pts in proptest::collection::vec((-3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0), 4..5),
        k in 0.5f64..50.0,
    ) {
        use namd_repro::mdcore::bonded::{angle_force, bond_force, dihedral_force};
        let cell = Cell::open(Vec3::splat(-50.0), Vec3::splat(100.0));
        let p: Vec<Vec3> = pts.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect();

        // Reject near-degenerate geometries where angles/dihedrals are
        // ill-conditioned.
        let b1 = p[1] - p[0];
        let b2 = p[2] - p[1];
        let b3 = p[3] - p[2];
        prop_assume!(b1.norm() > 0.3 && b2.norm() > 0.3 && b3.norm() > 0.3);
        prop_assume!(b1.cross(b2).norm() > 0.1 && b2.cross(b3).norm() > 0.1);

        let h = 1e-6;

        // Bond between p0 and p1.
        let (_, fa, fb) = bond_force(&cell, p[0], p[1], k, 1.4);
        prop_assert!((fa + fb).norm() < 1e-9 * (1.0 + fa.norm()));
        let e_at = |x: Vec3| bond_force(&cell, x, p[1], k, 1.4).0;
        let fd = -(e_at(p[0] + Vec3::new(h, 0.0, 0.0)) - e_at(p[0] - Vec3::new(h, 0.0, 0.0)))
            / (2.0 * h);
        prop_assert!((fd - fa.x).abs() < 1e-4 * (1.0 + fa.x.abs()));

        // Angle p0-p1-p2.
        let (_, aa, ab, ac) = angle_force(&cell, p[0], p[1], p[2], k, 1.9);
        prop_assert!((aa + ab + ac).norm() < 1e-8 * (1.0 + aa.norm()));
        let e_at = |x: Vec3| angle_force(&cell, x, p[1], p[2], k, 1.9).0;
        let fd = -(e_at(p[0] + Vec3::new(0.0, h, 0.0)) - e_at(p[0] - Vec3::new(0.0, h, 0.0)))
            / (2.0 * h);
        prop_assert!((fd - aa.y).abs() < 1e-3 * (1.0 + aa.y.abs()));

        // Dihedral p0-p1-p2-p3: net force zero and FD on the second atom
        // (the middle-atom gradients are the historically bug-prone part).
        let (_, df) = dihedral_force(&cell, p[0], p[1], p[2], p[3], k, 3, 0.4);
        let net: Vec3 = df.iter().copied().sum();
        prop_assert!(net.norm() < 1e-8 * (1.0 + df[0].norm()));
        let e_at = |x: Vec3| dihedral_force(&cell, p[0], x, p[2], p[3], k, 3, 0.4).0;
        let fd = -(e_at(p[1] + Vec3::new(0.0, 0.0, h)) - e_at(p[1] - Vec3::new(0.0, 0.0, h)))
            / (2.0 * h);
        prop_assert!(
            (fd - df[1].z).abs() < 1e-3 * (1.0 + df[1].z.abs()),
            "dihedral middle-atom gradient: fd {} vs analytic {}",
            fd,
            df[1].z
        );
    }
}
