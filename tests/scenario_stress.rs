//! Scenario-zoo stress harness: every zoo generator runs through the
//! engine's measurement → balance → re-measure loop under every LB
//! strategy, and each scenario's **declared imbalance budget** is enforced
//! from the `LbAudit` stream — pass/fail coverage for `lb::greedy`,
//! `lb::refine`, `lb::diffusion`, and the static `lb::rcb` placement on
//! genuinely non-uniform load, which the paper's near-uniform benchmark
//! decks never produce.
//!
//! Runs on the DES backend in Counted mode: loads are modeled and
//! deterministic, so budget assertions are exact, and failures name the
//! scenario, seed, strategy, and first bad phase for replay.
//!
//! `SCENARIO_STRESS_CASES=n` limits the sweep to the first `n` zoo
//! scenarios (the tier-1 script runs a reduced count; the full matrix runs
//! in CI's stress lane).

use mdcore::prelude::System;
use molgen::zoo::{self, Scenario};
use namd_core::prelude::*;

/// Stress operating point: big enough for 27 patches (3×3×3 at the zoo
/// cutoff), small enough that the full matrix stays in test-suite time.
const STRESS_ATOMS: usize = 4_000;
const N_PES: usize = 8;
const SEED: u64 = 2024;

/// The four LB configurations under test. `rcb-static` keeps the initial
/// RCB placement (`LbStrategy::None`) — its audit record is the static
/// baseline every other strategy must beat.
const STRATEGIES: [(LbStrategy, &str); 4] = [
    (LbStrategy::None, "rcb-static"),
    (LbStrategy::Greedy, "greedy"),
    (LbStrategy::GreedyRefine, "greedy-refine"),
    (LbStrategy::Diffusion, "diffusion"),
];

fn stress_scenarios() -> Vec<Scenario> {
    let all = zoo::all(STRESS_ATOMS, SEED);
    let cases = std::env::var("SCENARIO_STRESS_CASES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(all.len())
        .clamp(1, all.len());
    all.into_iter().take(cases).collect()
}

/// Run one (system, strategy) through the benchmark loop with an in-memory
/// registry; returns the engine (for oracle re-checks) and the run.
fn run_stress(sys: &System, strategy: LbStrategy) -> (Engine, BenchmarkRun) {
    let cfg = SimConfig::builder(N_PES, machine::presets::generic_cluster())
        .backend(Backend::Des)
        .force_mode(ForceMode::Counted)
        .lb(strategy)
        .steps_per_phase(3)
        .build()
        .expect("valid stress config");
    let mut engine = Engine::new(sys.clone(), cfg);
    engine.set_metrics(Some(MetricsRegistry::in_memory()));
    let run = engine.run_benchmark();
    (engine, run)
}

/// Context string every assertion leads with, so a failure names what the
/// issue asks for: scenario, seed, strategy (and the caller appends the
/// phase).
fn ctx(sc: &Scenario, strategy_tag: &str, stage: usize) -> String {
    format!(
        "scenario {} (seed {}, stage {}/{}), strategy {}",
        sc.name,
        sc.seed(),
        stage + 1,
        sc.n_stages(),
        strategy_tag
    )
}

#[test]
fn every_scenario_passes_oracle_and_imbalance_budget_under_every_strategy() {
    for sc in stress_scenarios() {
        for stage in 0..sc.n_stages() {
            let sys = sc.build_stage(stage);
            for (strategy, tag) in STRATEGIES {
                let (engine, run) = run_stress(&sys, strategy);
                let who = ctx(&sc, tag, stage);

                // Every phase satisfies the message-driven invariants;
                // a failure names the first bad phase.
                for (k, phase) in run.phases.iter().enumerate() {
                    let report = check_phase(&engine, phase);
                    assert!(
                        report.ok(),
                        "{who}: oracle failed at phase {k} (first bad phase): {}",
                        report.render()
                    );
                }

                let audits = &engine.metrics.as_ref().unwrap().lb_audits;
                assert!(!audits.is_empty(), "{who}: no LbAudit records");

                // The first audit is always the static RCB placement.
                let first = &audits[0];
                assert_eq!(first.strategy, "rcb-static", "{who}");
                assert!(
                    first.imbalance_after() <= sc.budget.static_max,
                    "{who}: static placement imbalance {:.3} blows the \
                     static budget {:.3} (phase {})",
                    first.imbalance_after(),
                    sc.budget.static_max,
                    first.phase
                );

                // The strategy's final decision must land within the
                // scenario's LB budget (the static baseline for
                // rcb-static *is* the final decision).
                let last = audits.last().unwrap();
                let bar = if strategy == LbStrategy::None {
                    sc.budget.static_max
                } else {
                    sc.budget.lb_max
                };
                assert!(
                    last.imbalance_after() <= bar,
                    "{who}: final imbalance {:.3} ({}) blows the budget {:.3} \
                     (phase {})",
                    last.imbalance_after(),
                    last.strategy,
                    bar,
                    last.phase
                );
            }
        }
    }
}

#[test]
fn nonuniform_scenarios_actually_stress_the_static_placement() {
    // A scenario that declares `expected_static_min > 1` must deliver that
    // imbalance to the balancer — otherwise the zoo has stopped generating
    // the stress it documents and the budget assertions above test nothing.
    for sc in stress_scenarios() {
        if sc.budget.expected_static_min <= 1.0 {
            continue;
        }
        let sys = sc.build();
        let (engine, _run) = run_stress(&sys, LbStrategy::None);
        let audits = &engine.metrics.as_ref().unwrap().lb_audits;
        let imb = audits[0].imbalance_after();
        assert!(
            imb >= sc.budget.expected_static_min,
            "scenario {} (seed {}): static imbalance {:.3} below the declared \
             minimum {:.3} — the generator no longer produces its profile '{}'",
            sc.name,
            sc.seed(),
            imb,
            sc.budget.expected_static_min,
            sc.profile.as_str()
        );
    }
}

#[test]
fn balancing_strategies_improve_on_static_for_nonuniform_scenarios() {
    // On every scenario that promises static imbalance, each measurement-
    // based strategy must leave the system strictly better than the static
    // placement it started from.
    for sc in stress_scenarios() {
        if sc.budget.expected_static_min <= 1.0 {
            continue;
        }
        let sys = sc.build();
        for (strategy, tag) in STRATEGIES {
            if strategy == LbStrategy::None {
                continue;
            }
            let (engine, _run) = run_stress(&sys, strategy);
            let audits = &engine.metrics.as_ref().unwrap().lb_audits;
            let static_imb = audits[0].imbalance_after();
            let final_imb = audits.last().unwrap().imbalance_after();
            assert!(
                final_imb < static_imb,
                "{}: left imbalance {:.3}, no better than static {:.3}",
                ctx(&sc, tag, 0),
                final_imb,
                static_imb
            );
        }
    }
}

#[test]
fn diffusion_repair_rounds_improve_hotspot_monotonically() {
    // Engine-level counterpart of the lb-crate unit test: take the real
    // measured LB problem from the density-hotspot scenario and verify the
    // diffusion strategy's repair rounds never regress and eventually
    // improve the home-placement imbalance.
    let sc = zoo::density_hotspot(STRESS_ATOMS, SEED);
    let sys = sc.build();
    let (engine, run) = run_stress(&sys, LbStrategy::None);
    let (problem, _map) = engine.lb_problem(&run.phases[0]);
    // Home placement: every compute on its first patch's home PE.
    let home: Vec<usize> =
        problem.computes.iter().map(|c| problem.patch_home[c.patches[0]]).collect();
    let mut last = lb::imbalance_ratio(&problem, &home);
    let mut improved = false;
    for rounds in [1, 2, 4, 8, 16, 32] {
        let a = lb::diffusion(
            &problem,
            &home,
            lb::DiffusionParams { rounds, transfer_fraction: 0.5 },
        );
        let r = lb::imbalance_ratio(&problem, &a);
        assert!(
            r <= last + 1e-9,
            "density-hotspot (seed {SEED}): diffusion regressed at {rounds} \
             rounds: {last:.3} -> {r:.3}"
        );
        if r < last - 1e-9 {
            improved = true;
        }
        last = r;
    }
    assert!(improved, "32 diffusion rounds never improved the hot-spot");
    assert!(last <= sc.budget.lb_max, "converged diffusion {last:.3} over budget");
}

#[test]
fn growing_and_shrinking_systems_hold_budgets_at_every_stage() {
    // The dynamic scenarios are the LB-keeps-up story: each stage is a
    // different system size, and the budget must hold at each one. (The
    // full strategy matrix above already covers each stage; this test
    // additionally checks the stages really change the problem size.)
    for sc in [
        zoo::growing_system(STRESS_ATOMS, SEED),
        zoo::shrinking_system(STRESS_ATOMS, SEED),
    ] {
        assert!(sc.n_stages() > 1, "{} should be multi-stage", sc.name);
        let mut patch_counts = Vec::new();
        for stage in 0..sc.n_stages() {
            let sys = sc.build_stage(stage);
            let (engine, _run) = run_stress(&sys, LbStrategy::GreedyRefine);
            patch_counts.push(engine.decomp().grid.n_patches());
            let audits = &engine.metrics.as_ref().unwrap().lb_audits;
            let final_imb = audits.last().unwrap().imbalance_after();
            assert!(
                final_imb <= sc.budget.lb_max,
                "{}: final imbalance {:.3} over budget {:.3}",
                ctx(&sc, "greedy-refine", stage),
                final_imb,
                sc.budget.lb_max
            );
        }
        let sizes: Vec<usize> =
            sc.stages.iter().map(|&f| sc.atoms_at(f)).collect();
        assert!(
            sizes.windows(2).all(|w| w[0] != w[1]),
            "{}: stages {sizes:?} did not change the system size",
            sc.name
        );
    }
}

/// Calibration probe, not a test: prints the measured static/strategy
/// imbalances per scenario at the stress operating point so budget numbers
/// in `crates/molgen/src/zoo.rs` can be re-derived after generator or LB
/// changes. Run with:
/// `cargo test --test scenario_stress -- --ignored --nocapture probe`
#[test]
#[ignore = "calibration probe; prints measurements, asserts nothing"]
fn probe_imbalances() {
    for sc in zoo::all(STRESS_ATOMS, SEED) {
        for stage in 0..sc.n_stages() {
            let sys = sc.build_stage(stage);
            for (strategy, tag) in STRATEGIES {
                let (engine, _run) = run_stress(&sys, strategy);
                let audits = &engine.metrics.as_ref().unwrap().lb_audits;
                let first = audits[0].imbalance_after();
                let last = audits.last().unwrap().imbalance_after();
                println!(
                    "{:>17} stage {} atoms {:>5} {:>13}: static {:.3} final {:.3}",
                    sc.name,
                    stage,
                    sys.n_atoms(),
                    tag,
                    first,
                    last
                );
            }
        }
    }
}
