//! Deterministic schedule fuzzing and fault injection over the Runtime
//! layer (ISSUE 2):
//!
//! * proptest over seeds × schedule policies: a DES phase whose dequeue
//!   order is shuffled / LIFO-inverted / latency-jittered still reproduces
//!   the sequential mdcore physics on a restrained apoa1-like system, at
//!   the tolerances asserted in `backend_equivalence.rs`, and passes every
//!   invariant oracle;
//! * replay determinism: the same `--schedule-seed` on the DES produces
//!   bit-identical trace streams and energies;
//! * fault injection: a plan that drops one force message per phase still
//!   completes — the engine's delivery-repair loop re-sends the dead
//!   letter — with a zero message-conservation residual, on both backends;
//! * `lb::greedy` / `lb::refine` invariants under adversarial load
//!   distributions.
//!
//! Case count for the fuzz groups comes from `SCHEDULE_FUZZ_CASES`
//! (default 6; CI's soak job runs 25).

use namd_repro::charmrt::{FaultPlan, SchedulePolicy};
use namd_repro::lb;
use namd_repro::machine::presets;
use namd_repro::mdcore::prelude::*;
use namd_repro::molgen;
use namd_repro::namd_core::prelude::*;
use proptest::prelude::*;
use std::sync::OnceLock;

fn fuzz_cases() -> u32 {
    std::env::var("SCHEDULE_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
}

/// The same restrained apoa1-like system `backend_equivalence.rs` uses:
/// thermalized and pre-stepped so the protein restraints are strained.
fn restrained_apoa1_small() -> System {
    static SYS: OnceLock<System> = OnceLock::new();
    SYS.get_or_init(|| {
        let bench = molgen::apoa1_like().scaled(0.04);
        let mut sys = molgen::SystemBuilder::new(bench.spec().clone()).build_restrained();
        sys.thermalize(300.0, 11);
        let mut sim = Simulator::new(&sys, 1.0);
        for _ in 0..5 {
            sim.step(&mut sys);
        }
        sys
    })
    .clone()
}

const PHASE_STEPS: usize = 3;

/// Sequential mdcore reference for a [`PHASE_STEPS`]-evaluation phase:
/// potential and pair count at the initial configuration, and the
/// positions after the corresponding `PHASE_STEPS - 1` position updates.
struct SeqRef {
    potential0: f64,
    pairs0: u64,
    final_positions: Vec<Vec3>,
}

fn seq_ref() -> &'static SeqRef {
    static REF: OnceLock<SeqRef> = OnceLock::new();
    REF.get_or_init(|| {
        let mut sys = restrained_apoa1_small();
        let mut f = vec![Vec3::ZERO; sys.n_atoms()];
        let e0 = namd_repro::mdcore::sim::compute_forces(&sys, &mut f);
        let mut sim = Simulator::new(&sys, 1.0);
        for _ in 0..PHASE_STEPS - 1 {
            sim.step(&mut sys);
        }
        SeqRef {
            potential0: e0.potential(),
            pairs0: e0.nonbonded.pairs,
            final_positions: sys.positions,
        }
    })
}

fn real_des_cfg(n_pes: usize) -> SimConfigBuilder {
    SimConfig::builder(n_pes, presets::generic_cluster())
        .force_mode(ForceMode::Real)
        .backend(Backend::Des)
        .dt_fs(1.0)
}

/// Run one Real-mode phase under `policy` and assert it reproduces the
/// sequential reference and passes every oracle. Returns the phase result
/// for any extra assertions the caller wants.
fn check_policy_preserves_physics(policy: SchedulePolicy, n_pes: usize) -> Result<(), String> {
    let reference = seq_ref();
    let cfg = real_des_cfg(n_pes).schedule(policy).build().expect("valid test config");
    let mut engine = Engine::new(restrained_apoa1_small(), cfg);
    let r = engine.run_phase(PHASE_STEPS);

    // Energies at the tolerances of `backend_equivalence.rs`: the shuffled
    // schedule permutes force-accumulation order, so equality is to within
    // summation-reordering error, not bit-exact.
    let tol = 1e-8 * reference.potential0.abs().max(1.0);
    let diff = (r.energies[0].potential() - reference.potential0).abs();
    if diff >= tol {
        return Err(format!(
            "step-0 potential under {:?} seed {}: {} vs sequential {} (|diff| {diff} >= {tol})",
            policy.kind, policy.seed, r.energies[0].potential(), reference.potential0
        ));
    }
    if r.energies[0].pairs != reference.pairs0 {
        return Err(format!(
            "pair count under {:?} seed {}: {} vs sequential {}",
            policy.kind, policy.seed, r.energies[0].pairs, reference.pairs0
        ));
    }

    // Final per-atom positions: any per-atom force error would integrate
    // into a visible position error, so this bounds the forces too.
    let pos = engine.shared.state.read().unwrap().system.positions.clone();
    for (i, (pe, ps)) in pos.iter().zip(&reference.final_positions).enumerate() {
        let d = (*pe - *ps).norm();
        if d >= 1e-6 {
            return Err(format!(
                "atom {i} diverged by {d} under {:?} seed {}",
                policy.kind, policy.seed
            ));
        }
    }

    // Invariant oracles: quiescence, message conservation, Newton's third
    // law, energy drift. A failure names the seed and first violating step.
    let report = check_phase(&engine, &r);
    if !report.ok() {
        return Err(report.render());
    }
    if r.stats.conservation_residual() != 0 {
        return Err(format!(
            "healthy run leaked messages: residual {} under {:?} seed {}",
            r.stats.conservation_residual(),
            policy.kind,
            policy.seed
        ));
    }
    Ok(())
}

fn arb_policy() -> impl Strategy<Value = SchedulePolicy> {
    // The vendored proptest has no `prop_oneof`; pick the policy by index.
    (0u64..u64::MAX, 0usize..3).prop_map(|(seed, which)| {
        let name = ["shuffle", "lifo", "jitter"][which];
        SchedulePolicy::parse(name, seed).expect("known policy name")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    #[test]
    fn perturbed_schedules_preserve_physics(
        policy in arb_policy(),
        n_pes in 2usize..5,
    ) {
        if let Err(msg) = check_policy_preserves_physics(policy, n_pes) {
            prop_assert!(false, "{}", msg);
        }
    }
}

#[test]
fn same_seed_replays_bit_identical_traces() {
    let run = || {
        let cfg = real_des_cfg(3)
            .schedule(SchedulePolicy::random_shuffle(0xDEAD_BEEF))
            .tracing(true)
            .build()
            .expect("valid test config");
        let mut engine = Engine::new(restrained_apoa1_small(), cfg);
        engine.run_phase(PHASE_STEPS)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits(), "makespan not replayed");
    let bits = |r: &PhaseResult| -> Vec<(u64, u64)> {
        r.energies.iter().map(|e| (e.potential().to_bits(), e.total().to_bits())).collect()
    };
    assert_eq!(bits(&a), bits(&b), "energies not bit-identical across replays");
    let (ta, tb) = (a.trace.expect("tracing on"), b.trace.expect("tracing on"));
    assert_eq!(ta, tb, "trace streams differ for the same schedule seed");
}

#[test]
fn different_seeds_change_the_interleaving() {
    // The fuzzer is only exploring schedules if distinct seeds actually
    // produce distinct interleavings.
    let trace_for = |seed: u64| {
        let cfg = real_des_cfg(3)
            .schedule(SchedulePolicy::random_shuffle(seed))
            .tracing(true)
            .build()
            .expect("valid test config");
        let mut engine = Engine::new(restrained_apoa1_small(), cfg);
        engine.run_phase(PHASE_STEPS).trace.expect("tracing on")
    };
    assert_ne!(trace_for(1), trace_for(2), "seeds 1 and 2 gave the same interleaving");
}

/// The ISSUE acceptance scenario: a fault plan that drops one force
/// message per phase must not wedge quiescence — the engine detects the
/// incomplete phase and re-sends the dead letter — and the oracles must
/// all stay green.
fn check_drop_repair(backend: Backend) {
    let cfg = real_des_cfg(2)
        .backend(backend)
        .schedule(SchedulePolicy::random_shuffle(7))
        .fault_plan(Some(FaultPlan::parse("drop:entry=PatchRecvForces:limit=1").expect("valid plan")))
        .build()
        .expect("valid test config");
    let mut engine = Engine::new(restrained_apoa1_small(), cfg);
    let r = engine.run_phase(2);

    assert_eq!(r.stats.msgs_dropped, 1, "exactly one drop should have fired");
    assert!(
        r.stats.msgs_redelivered >= 1,
        "the dropped message must come back via the repair loop"
    );
    let report = check_phase(&engine, &r);
    assert!(report.ok(), "oracle violations after fault repair:\n{}", report.render());
    assert_eq!(r.stats.conservation_residual(), 0, "repair must balance the ledger");
}

#[test]
fn dropped_force_message_is_repaired_on_des() {
    check_drop_repair(Backend::Des);
}

#[test]
fn dropped_force_message_is_repaired_on_threads() {
    // On real threads the drop manifests as a genuine lost packet: the
    // no-progress watchdog reports the stall and the engine re-sends.
    check_drop_repair(Backend::Threads);
}

// ---------------------------------------------------------------------------
// Load-balancer invariants under adversarial load distributions.
// ---------------------------------------------------------------------------

fn arb_lb_problem() -> impl Strategy<Value = lb::LbProblem> {
    // No `prop_flat_map` in the vendored proptest: draw oversized raw
    // material and fold it down to a consistent problem in one map.
    let raw_compute = (0u8..5, 0.0..1.0f64, 0usize..4096, 0usize..4096);
    (
        2usize..8,
        1usize..16,
        proptest::collection::vec(0.0..0.5f64, 8..9),
        proptest::collection::vec(0usize..4096, 16..17),
        proptest::collection::vec(raw_compute, 1..120),
    )
        .prop_map(|(n_pes, n_patches, background, homes, raw)| {
            let computes = raw
                .into_iter()
                .map(|(sel, u, ra, rb)| {
                    // Adversarial loads: mostly tiny objects, with ~1 in 5
                    // two to three orders of magnitude heavier.
                    let load =
                        if sel == 4 { 1.0 + 49.0 * u } else { 0.001 + 0.049 * u };
                    let (a, b) = (ra % n_patches, rb % n_patches);
                    let patches = if a == b { vec![a] } else { vec![a, b] };
                    lb::ComputeSpec { load, patches }
                })
                .collect();
            lb::LbProblem {
                n_pes,
                background: background[..n_pes].to_vec(),
                patch_home: homes[..n_patches].iter().map(|h| h % n_pes).collect(),
                computes,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases().max(32)))]

    /// Every compute is assigned exactly once, to a valid PE, and no load
    /// is created or destroyed: the per-PE loads sum to background plus
    /// the total compute load.
    #[test]
    fn greedy_assigns_every_compute_exactly_once(problem in arb_lb_problem()) {
        problem.validate().expect("generator produced a valid problem");
        let assignment = lb::greedy(&problem, lb::GreedyParams::default());
        prop_assert_eq!(assignment.len(), problem.computes.len());
        for (i, &pe) in assignment.iter().enumerate() {
            prop_assert!(pe < problem.n_pes, "compute {} on invalid PE {}", i, pe);
        }
        let loads = lb::pe_loads(&problem, &assignment);
        let total: f64 = problem.background.iter().sum::<f64>()
            + problem.computes.iter().map(|c| c.load).sum::<f64>();
        let assigned: f64 = loads.iter().sum();
        prop_assert!(
            (assigned - total).abs() < 1e-9 * total.max(1.0),
            "load mass changed: assigned {} vs total {}",
            assigned,
            total
        );
    }

    /// Refinement never makes the bottleneck worse, and preserves the
    /// exactly-once property.
    #[test]
    fn refine_never_increases_the_max_pe_load(problem in arb_lb_problem()) {
        let before = lb::greedy(&problem, lb::GreedyParams::default());
        let max_before =
            lb::pe_loads(&problem, &before).into_iter().fold(0.0f64, f64::max);
        let (after, _moves) = lb::refine(&problem, &before, lb::RefineParams::default());
        prop_assert_eq!(after.len(), problem.computes.len());
        for &pe in &after {
            prop_assert!(pe < problem.n_pes);
        }
        let max_after =
            lb::pe_loads(&problem, &after).into_iter().fold(0.0f64, f64::max);
        prop_assert!(
            max_after <= max_before + 1e-9 * max_before.max(1.0),
            "refine made the bottleneck worse: {} -> {}",
            max_before,
            max_after
        );
    }
}
