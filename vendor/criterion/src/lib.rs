//! Vendored, dependency-free subset of the `criterion` benchmarking API.
//!
//! Provides the types and macros this workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size` / `throughput` /
//! `bench_with_input`, `BenchmarkId`, and `black_box` — backed by a
//! simple wall-clock measurement loop (median of N samples after a short
//! calibration pass) instead of upstream's full statistical machinery.
//! Results print as `name  time: [median]  thrpt: [...]` lines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-exported for benches that use `criterion::black_box`; benches using
/// `std::hint::black_box` directly are unaffected.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Iterations per sample, fixed by calibration before sampling.
    iters: u64,
    /// Duration of each completed sample.
    samples: Vec<Duration>,
    /// Target number of samples.
    sample_count: usize,
}

impl Bencher {
    /// Run the routine; time `self.sample_count` samples of
    /// `self.iters` iterations each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn calibrate<F: FnMut(&mut Bencher)>(f: &mut F) -> u64 {
    // Grow the iteration count until one sample takes ≥ ~2 ms, so cheap
    // routines are not dominated by timer resolution.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, samples: Vec::new(), sample_count: 1 };
        f(&mut b);
        let elapsed = b.samples.first().copied().unwrap_or_default();
        if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            return iters;
        }
        iters *= 2;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_count: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let iters = calibrate(&mut f);
    let mut b = Bencher { iters, samples: Vec::new(), sample_count };
    f(&mut b);
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = if per_iter.is_empty() { 0.0 } else { per_iter[per_iter.len() / 2] };
    let time = format_seconds(median);
    match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            let rate = n as f64 / median;
            println!("{name:<55} time: [{time}]  thrpt: [{:.3} Melem/s]", rate / 1e6);
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            let rate = n as f64 / median;
            println!("{name:<55} time: [{time}]  thrpt: [{:.3} MiB/s]", rate / (1 << 20) as f64);
        }
        _ => println!("{name:<55} time: [{time}]"),
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} µs", s * 1e6)
    } else {
        format!("{:.4} ns", s * 1e9)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Upstream parses CLI args here; we accept and ignore them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.default_sample_size, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        f: F,
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Define a benchmark group function compatible with `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("trivial_sum", |b| {
            b.iter(|| {
                runs += 1;
                (0..100u64).sum::<u64>()
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_support_throughput_and_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("group");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("double", 21), &21u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats_as_name_slash_param() {
        assert_eq!(BenchmarkId::new("fft", 256).to_string(), "fft/256");
    }
}
