//! Vendored, dependency-free subset of the `proptest` API.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` inner
//! attribute), range / tuple / `collection::vec` strategies, `prop_map`,
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted for an offline build:
//! no shrinking (a failing case reports its inputs via the panic message
//! and is reproducible because case generation is deterministic per
//! test-name and case index), and no persisted failure files.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn
    /// uniformly from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `vec(element, len_range)` — a `Vec<S::Value>` strategy.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "proptest::collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Generate test functions from `pattern in strategy` argument lists.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategies = ($($strat,)+);
            $crate::test_runner::run_cases(
                stringify!($name),
                &config,
                &strategies,
                |($($arg,)+)| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Like `assert!`, but fails only the current generated case (with its
/// inputs reported) rather than unwinding from arbitrary depth.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both operands on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Discard the current case (retried with fresh inputs, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn tuples_ranges_and_maps_compose(
            (a, b) in (0u32..10, 10u32..20),
            x in (0.0f64..1.0).prop_map(|v| v * 100.0),
            v in crate::collection::vec(0usize..5, 1..8),
        ) {
            prop_assert!(a < 10 && (10..20).contains(&b));
            prop_assert!((0.0..100.0).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn assume_rejects_without_consuming_cases(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn failing_case_panics_with_message() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run_cases(
                "always_fails",
                &ProptestConfig::with_cases(4),
                &(0u32..10,),
                |(n,)| -> Result<(), TestCaseError> {
                    prop_assert!(n > 100, "n was {}", n);
                    Ok(())
                },
            );
        });
        let err = result.expect_err("should have panicked");
        let msg = err.downcast_ref::<String>().expect("panic payload");
        assert!(msg.contains("n was"), "unexpected message: {msg}");
    }

    #[test]
    fn generation_is_deterministic_per_name_and_case() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            crate::test_runner::run_cases(
                "determinism_probe",
                &ProptestConfig::with_cases(8),
                &(0u64..1_000_000,),
                |(n,)| {
                    out.push(n);
                    Ok(())
                },
            );
        }
        assert_eq!(first, second);
        assert!(first.iter().any(|&n| n != first[0]), "degenerate stream");
    }
}
