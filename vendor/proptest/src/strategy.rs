//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream there is no value-tree/shrinking machinery: `generate`
/// draws one concrete value. Determinism comes from the runner seeding
/// `TestRng` per (test name, case index).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Filter generated values; failing the predicate rejects the case.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, whence }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`]. Rejection is handled by retrying
/// locally (bounded), since generation has no global reject channel.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row: {}", self.whence);
    }
}

/// Strategy producing a constant value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}
