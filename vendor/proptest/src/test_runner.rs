//! Case execution: deterministic RNG, config, and the case loop.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — draw fresh inputs, don't count the case.
    Reject,
    /// `prop_assert!`-style failure with a message.
    Fail(String),
}

impl TestCaseError {
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// Deterministic per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    fn for_case(test_name: &str, case: u32, attempt: u32) -> Self {
        // FNV-1a over the test name, mixed with the case/attempt indices,
        // so every (test, case) pair sees a distinct, reproducible stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= (case as u64) << 32 | attempt as u64;
        TestRng(SmallRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Drive `config.cases` successful executions of `test` over values drawn
/// from `strategy`. Panics (failing the enclosing `#[test]`) on the first
/// case failure, reporting the case index and message; `Reject`ed cases
/// are retried with fresh inputs up to a bound.
pub fn run_cases<S, F>(test_name: &str, config: &ProptestConfig, strategy: &S, mut test: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let max_rejects = 16 * config.cases.max(16);
    let mut rejects = 0u32;
    let mut case = 0u32;
    while case < config.cases {
        let mut rng = TestRng::for_case(test_name, case, rejects);
        let value = strategy.generate(&mut rng);
        match test(value) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                if rejects > max_rejects {
                    panic!(
                        "proptest '{test_name}': too many prop_assume! rejections \
                         ({rejects}) before reaching {} cases",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("proptest '{test_name}' failed at case {case}: {message}");
            }
        }
    }
}
