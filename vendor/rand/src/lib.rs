//! Vendored, dependency-free subset of the `rand` crate API.
//!
//! The workspace builds in sandboxed environments with no registry access,
//! so the handful of `rand` features we actually use — the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, uniform `gen()` sampling for the
//! primitive types we draw, and integer/float `gen_range` — are provided
//! here as a small path crate. Generators live in sibling crates (see
//! `rand_chacha`). Stream values are *not* guaranteed to match upstream
//! `rand` bit-for-bit; everything in this repo that consumes randomness
//! asserts physical tolerances or within-binary determinism only.

/// Low-level uniform bit source. Mirrors `rand_core::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64, like upstream.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types uniformly sampleable over their "standard" domain (`[0,1)` for
/// floats, the full range for integers, fair coin for `bool`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

mod sealed {
    /// Integer types usable with `gen_range`.
    pub trait RangeInt: Copy + PartialOrd {
        fn to_u64_offset(self, base: Self) -> u64;
        fn from_u64_offset(base: Self, offset: u64) -> Self;
    }

    macro_rules! range_int {
        ($($t:ty => $wide:ty),*) => {$(
            impl RangeInt for $t {
                fn to_u64_offset(self, base: Self) -> u64 {
                    (self as $wide).wrapping_sub(base as $wide) as u64
                }
                fn from_u64_offset(base: Self, offset: u64) -> Self {
                    (base as $wide).wrapping_add(offset as $wide) as $t
                }
            }
        )*};
    }
    range_int!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
               i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);
}

/// A range argument for [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, n)` by rejection on the top of the u64 range.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

impl<T: sealed::RangeInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = self.end.to_u64_offset(self.start);
        T::from_u64_offset(self.start, uniform_u64_below(rng, span))
    }
}

impl<T: sealed::RangeInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let span = end.to_u64_offset(start);
        if span == u64::MAX {
            return sealed::RangeInt::from_u64_offset(start, rng.next_u64());
        }
        T::from_u64_offset(start, uniform_u64_below(rng, span + 1))
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing convenience trait, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Minimal stand-ins for `rand::rngs`.

    /// SplitMix64 — tiny, decent-quality generator used where upstream
    /// code reached for `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl crate::RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng { state: u64::from_le_bytes(seed) }
        }
    }
}

pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn f64_samples_are_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for i in 0..500usize {
            let j = rng.gen_range(0..=i);
            assert!(j <= i);
            let k = rng.gen_range(0..i + 1);
            assert!(k <= i);
            let x = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn seed_determines_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn integer_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 5];
        for _ in 0..5000 {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed counts: {counts:?}");
        }
    }
}
