//! Vendored, dependency-free ChaCha8 random generator.
//!
//! Implements the real ChaCha stream cipher core (8 rounds) over the
//! [`rand`] traits so `ChaCha8Rng::seed_from_u64(..)` gives the same
//! high-quality, seed-deterministic streams the workspace relied on from
//! the upstream crate. The word stream is not guaranteed to be
//! bit-identical to upstream `rand_chacha` (block-to-word serialization
//! details differ); consumers assert physical tolerances and
//! within-binary determinism only.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;
/// "expand 32-byte k" in little-endian u32s.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: 16 output words from the 16-word input state.
fn chacha_block(input: &[u32; 16], out: &mut [u32; 16]) {
    let mut x = *input;
    for _ in 0..CHACHA_ROUNDS / 2 {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = x[i].wrapping_add(input[i]);
    }
}

/// ChaCha with 8 rounds, 256-bit seed, 64-bit block counter, zero nonce.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key schedule: constants + key + counter + nonce.
    state: [u32; 16],
    /// Buffered output words of the current block.
    buffer: [u32; 16],
    /// Next unread index into `buffer`; 16 = exhausted.
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        chacha_block(&self.state, &mut self.buffer);
        // 64-bit counter in words 12..14.
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    /// Words consumed from the stream so far. The block counter is
    /// pre-incremented when a block is buffered, so the buffered block is
    /// `counter - 1`.
    pub fn word_pos(&self) -> u64 {
        let counter = self.state[12] as u64 | (self.state[13] as u64) << 32;
        if counter == 0 {
            0
        } else {
            (counter - 1) * 16 + self.index as u64
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // Words 12..16: counter = 0, nonce = 0.
        ChaCha8Rng { state, buffer: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        let mut c = ChaCha8Rng::seed_from_u64(12);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..21 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(
            (0..40).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..40).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniform_f64_mean_is_half() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chacha_block_changes_with_counter() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
        assert_eq!(rng.word_pos(), 32);
    }
}
